// The paper's motivating application: dynamic verification of a running
// shared-memory machine. Measures checker throughput on MESI simulator
// traces — with the write-order augmentation (Section 5.2, polynomial)
// against the SAT route (no augmentation) — plus a fault-injection
// detection-rate table.
//
// Expected shape: the write-order checker scales linearly to hundreds of
// thousands of operations; the SAT route works but pays the encoding
// cost; both catch injected protocol bugs at high rates.

#include <benchmark/benchmark.h>

#include <iostream>

#include "encode/vmc_to_cnf.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "vmc/checker.hpp"

namespace {

using namespace vermem;

sim::SimResult simulate(std::size_t cores, std::size_t requests,
                        std::uint64_t seed, sim::FaultPlan faults = {}) {
  Xoshiro256ss rng(seed);
  sim::RandomProgramParams params;
  params.num_cores = cores;
  params.requests_per_core = requests;
  params.num_addresses = 16;
  const auto programs = sim::random_programs(params, rng);
  sim::SimConfig config;
  config.num_cores = cores;
  config.cache_lines = 8;
  config.seed = seed;
  config.faults = faults;
  return sim::run_programs(programs, config);
}

void BM_Simulate(benchmark::State& state) {
  const auto requests = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto result = simulate(4, requests, 1);
    benchmark::DoNotOptimize(result.stats.hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests) * 4);
}
BENCHMARK(BM_Simulate)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_CheckWithWriteOrder(benchmark::State& state) {
  const auto requests = static_cast<std::size_t>(state.range(0));
  const auto result = simulate(4, requests, 2);
  for (auto _ : state) {
    const auto report = vmc::verify_coherence_with_write_order(
        result.execution, result.write_orders);
    if (!report.coherent()) state.SkipWithError("clean run failed");
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(result.execution.num_operations()));
}
BENCHMARK(BM_CheckWithWriteOrder)
    ->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_CheckViaSat(benchmark::State& state) {
  const auto requests = static_cast<std::size_t>(state.range(0));
  const auto result = simulate(4, requests, 3);
  for (auto _ : state) {
    for (const Addr addr : result.execution.addresses()) {
      const auto verdict = encode::check_via_sat(
          vmc::VmcInstance::from_execution(result.execution, addr));
      if (!verdict.coherent()) state.SkipWithError("clean run failed");
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(result.execution.num_operations()));
}
BENCHMARK(BM_CheckViaSat)->Arg(100)->Arg(250)->Unit(benchmark::kMillisecond);

void BM_CheckAutoNoAugmentation(benchmark::State& state) {
  const auto requests = static_cast<std::size_t>(state.range(0));
  const auto result = simulate(4, requests, 4);
  for (auto _ : state) {
    const auto report = vmc::verify_coherence(result.execution);
    if (!report.coherent()) state.SkipWithError("clean run failed");
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(result.execution.num_operations()));
}
BENCHMARK(BM_CheckAutoNoAugmentation)
    ->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void print_detection_table() {
  std::cout << "\n== fault detection rates (write-order checker, 30 seeds, "
               "4 cores x 200 requests) ==\n";
  struct Scenario {
    const char* name;
    sim::FaultPlan plan;
  };
  const Scenario scenarios[] = {
      {"drop-invalidation p=0.05", {.drop_invalidation = 0.05}},
      {"drop-invalidation p=0.3", {.drop_invalidation = 0.3}},
      {"stale-fill p=0.1", {.stale_fill = 0.1}},
      {"lost-writeback p=0.1", {.lost_writeback = 0.1}},
      {"corrupt-value p=0.02", {.corrupt_value = 0.02}},
      {"corrupt-write-log p=0.5", {.corrupt_write_log = 0.5}},
  };
  TextTable table({"fault", "faulty runs", "flagged", "detection", "avg check"});
  for (const Scenario& scenario : scenarios) {
    int with_fault = 0, flagged = 0;
    double total_seconds = 0;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
      const auto result = simulate(4, 200, seed, scenario.plan);
      if (result.stats.faults_injected == 0) continue;
      ++with_fault;
      Stopwatch sw;
      const auto report = vmc::verify_coherence_with_write_order(
          result.execution, result.write_orders);
      total_seconds += sw.seconds();
      flagged += report.verdict != vmc::Verdict::kCoherent;
    }
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.0f%%",
                  with_fault ? 100.0 * flagged / with_fault : 0.0);
    table.add_row({scenario.name, std::to_string(with_fault),
                   std::to_string(flagged), rate,
                   human_nanos(with_fault ? total_seconds / with_fault * 1e9 : 0)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_detection_table();
  return 0;
}
