// Figure 5.1: 3SAT -> VMC with at most 3 operations per process and each
// value written at most twice. Verifies the structural caps across sizes
// and benchmarks construction + SAT-based decision.

#include <benchmark/benchmark.h>

#include <iostream>

#include "encode/vmc_to_cnf.hpp"
#include "reductions/restricted.hpp"
#include "sat/gen.hpp"
#include "support/table.hpp"

namespace {

using namespace vermem;

void BM_Construct3Ops(benchmark::State& state) {
  const auto m = static_cast<sat::Var>(state.range(0));
  Xoshiro256ss rng(1);
  const sat::Cnf cnf = sat::random_ksat(m, m * 4, 3, rng);
  for (auto _ : state) {
    auto red = reductions::three_sat_to_vmc_3ops(cnf);
    benchmark::DoNotOptimize(red.instance.num_operations());
  }
  const auto red = reductions::three_sat_to_vmc_3ops(cnf);
  state.counters["histories"] = static_cast<double>(red.instance.num_histories());
  state.counters["max_ops_per_proc"] =
      static_cast<double>(red.instance.max_ops_per_process());
  state.counters["max_writes_per_value"] =
      static_cast<double>(red.instance.max_writes_per_value());
}
BENCHMARK(BM_Construct3Ops)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_Decide3OpsViaSat(benchmark::State& state) {
  const auto m = static_cast<sat::Var>(state.range(0));
  Xoshiro256ss rng(2);
  std::vector<bool> planted;
  const sat::Cnf cnf = sat::planted_ksat(m, m * 3, 3, rng, planted);
  const auto red = reductions::three_sat_to_vmc_3ops(cnf);
  for (auto _ : state) {
    const auto result = encode::check_via_sat(red.instance);
    if (result.verdict != vmc::Verdict::kCoherent)
      state.SkipWithError("expected coherent");
  }
}
BENCHMARK(BM_Decide3OpsViaSat)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

void print_caps_table() {
  std::cout << "\n== Figure 5.1: structural caps hold at every size ==\n";
  TextTable table({"m", "n", "histories", "ops/process (<=3)",
                   "writes/value (<=2)"});
  Xoshiro256ss rng(3);
  for (const std::size_t m : {6, 24, 96, 384}) {
    const sat::Cnf cnf =
        sat::random_ksat(static_cast<sat::Var>(m), m * 4, 3, rng);
    const auto red = reductions::three_sat_to_vmc_3ops(cnf);
    table.add_row({std::to_string(m), std::to_string(m * 4),
                   std::to_string(red.instance.num_histories()),
                   std::to_string(red.instance.max_ops_per_process()),
                   std::to_string(red.instance.max_writes_per_value())});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_caps_table();
  return 0;
}
