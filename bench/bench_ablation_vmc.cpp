// Ablation study for the exact VMC checker's two design choices:
//   - eager read closure (schedule enabled pure reads without branching),
//   - search-state memoization.
// Both are soundness-preserving; the bench shows what each buys on
// contended coherent traces and on incoherent (fault-injected) ones.

#include <benchmark/benchmark.h>

#include <iostream>

#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "vmc/exact.hpp"
#include "workload/random.hpp"

namespace {

using namespace vermem;

workload::GeneratedTrace contended_trace(std::size_t histories,
                                         std::size_t ops_per_history,
                                         std::uint64_t seed) {
  workload::SingleAddressParams params;
  params.num_histories = histories;
  params.ops_per_history = ops_per_history;
  params.num_values = 3;  // few values => many candidate interleavings
  params.write_fraction = 0.5;
  Xoshiro256ss rng(seed);
  return workload::generate_coherent(params, rng);
}

void run_config(benchmark::State& state, bool eager, bool memo) {
  const auto trace = contended_trace(static_cast<std::size_t>(state.range(0)),
                                     static_cast<std::size_t>(state.range(1)), 1);
  const vmc::VmcInstance instance{trace.execution, 0};
  vmc::ExactOptions options;
  options.eager_reads = eager;
  options.memoize = memo;
  options.max_states = 50'000'000;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto result = vmc::check_exact(instance, options);
    if (result.verdict == vmc::Verdict::kUnknown)
      state.SkipWithError("budget exhausted");
    states = result.stats.states_visited;
  }
  state.counters["states"] = static_cast<double>(states);
}

void BM_EagerMemo(benchmark::State& state) { run_config(state, true, true); }
void BM_NoEager(benchmark::State& state) { run_config(state, false, true); }
void BM_NoMemo(benchmark::State& state) { run_config(state, true, false); }
void BM_Neither(benchmark::State& state) { run_config(state, false, false); }

BENCHMARK(BM_EagerMemo)->Args({4, 12})->Args({6, 12})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NoEager)->Args({4, 12})->Args({6, 12})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NoMemo)->Args({4, 8})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Neither)->Args({4, 8})->Unit(benchmark::kMicrosecond);

void print_ablation_table() {
  std::cout << "\n== exact-checker ablation (6 histories x 12 ops, coherent + "
               "faulted) ==\n";
  TextTable table({"configuration", "coherent: time / states",
                   "incoherent: time / states"});

  const auto trace = contended_trace(6, 12, 7);
  Xoshiro256ss rng(8);
  const auto faulted =
      workload::inject_fault(trace, workload::Fault::kFabricatedRead, rng);

  struct Config {
    const char* name;
    bool eager, memo;
  };
  const Config configs[] = {
      {"eager reads + memoization", true, true},
      {"memoization only", false, true},
      {"eager reads only", true, false},
      {"plain backtracking", false, false},
  };
  for (const Config& config : configs) {
    vmc::ExactOptions options;
    options.eager_reads = config.eager;
    options.memoize = config.memo;
    options.deadline = Deadline::after_ms(20000);

    auto describe = [&](const Execution& exec) -> std::string {
      const vmc::VmcInstance instance{exec, 0};
      Stopwatch sw;
      const auto result = vmc::check_exact(instance, options);
      if (result.verdict == vmc::Verdict::kUnknown) return "timeout";
      return human_nanos(sw.seconds() * 1e9) + " / " +
             std::to_string(result.stats.states_visited);
    };
    table.add_row({config.name, describe(trace.execution),
                   faulted ? describe(*faulted) : "n/a"});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_ablation_table();
  return 0;
}
