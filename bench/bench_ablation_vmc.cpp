// Ablation study for the exact VMC checker's two design choices:
//   - eager read closure (schedule enabled pure reads without branching),
//   - search-state memoization.
// Both are soundness-preserving; the bench shows what each buys on
// contended coherent traces and on incoherent (fault-injected) ones.
//
// With --alloc-profile the binary instead counts heap allocations (via
// an operator new override local to this TU) of the frozen legacy search
// against the arena-backed one and writes BENCH_alloc_profile.json —
// the trajectory harness's evidence that the rework actually removed
// per-state allocation rather than just shuffling constants.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "vmc/exact.hpp"
#include "vmc/exact_legacy.hpp"
#include "workload/random.hpp"

// Global-new instrumentation for --alloc-profile: every heap allocation
// in the process bumps the counter. Counting (not timing) makes the
// profile deterministic and build-type independent.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// GCC pairs the replaced operator new with the library delete at some
// inlined call sites and flags the malloc/free crossover; the pairing
// here is intentional (new -> malloc, delete -> free, process-wide).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

namespace {

using namespace vermem;

workload::GeneratedTrace contended_trace(std::size_t histories,
                                         std::size_t ops_per_history,
                                         std::uint64_t seed) {
  workload::SingleAddressParams params;
  params.num_histories = histories;
  params.ops_per_history = ops_per_history;
  params.num_values = 3;  // few values => many candidate interleavings
  params.write_fraction = 0.5;
  Xoshiro256ss rng(seed);
  return workload::generate_coherent(params, rng);
}

void run_config(benchmark::State& state, bool eager, bool memo) {
  const auto trace = contended_trace(static_cast<std::size_t>(state.range(0)),
                                     static_cast<std::size_t>(state.range(1)), 1);
  const vmc::VmcInstance instance{trace.execution, 0};
  vmc::ExactOptions options;
  options.eager_reads = eager;
  options.memoize = memo;
  options.max_states = 50'000'000;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto result = vmc::check_exact(instance, options);
    if (result.verdict == vmc::Verdict::kUnknown)
      state.SkipWithError("budget exhausted");
    states = result.stats.states_visited;
  }
  state.counters["states"] = static_cast<double>(states);
}

void BM_EagerMemo(benchmark::State& state) { run_config(state, true, true); }
void BM_NoEager(benchmark::State& state) { run_config(state, false, true); }
void BM_NoMemo(benchmark::State& state) { run_config(state, true, false); }
void BM_Neither(benchmark::State& state) { run_config(state, false, false); }

BENCHMARK(BM_EagerMemo)->Args({4, 12})->Args({6, 12})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NoEager)->Args({4, 12})->Args({6, 12})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NoMemo)->Args({4, 8})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Neither)->Args({4, 8})->Unit(benchmark::kMicrosecond);

void print_ablation_table() {
  std::cout << "\n== exact-checker ablation (6 histories x 12 ops, coherent + "
               "faulted) ==\n";
  TextTable table({"configuration", "coherent: time / states",
                   "incoherent: time / states"});

  const auto trace = contended_trace(6, 12, 7);
  Xoshiro256ss rng(8);
  const auto faulted =
      workload::inject_fault(trace, workload::Fault::kFabricatedRead, rng);

  struct Config {
    const char* name;
    bool eager, memo;
  };
  const Config configs[] = {
      {"eager reads + memoization", true, true},
      {"memoization only", false, true},
      {"eager reads only", true, false},
      {"plain backtracking", false, false},
  };
  for (const Config& config : configs) {
    vmc::ExactOptions options;
    options.eager_reads = config.eager;
    options.memoize = config.memo;
    options.deadline = Deadline::after_ms(20000);

    auto describe = [&](const Execution& exec) -> std::string {
      const vmc::VmcInstance instance{exec, 0};
      Stopwatch sw;
      const auto result = vmc::check_exact(instance, options);
      if (result.verdict == vmc::Verdict::kUnknown) return "timeout";
      return human_nanos(sw.seconds() * 1e9) + " / " +
             std::to_string(result.stats.states_visited);
    };
    table.add_row({config.name, describe(trace.execution),
                   faulted ? describe(*faulted) : "n/a"});
  }
  table.print(std::cout);
}

// --- --alloc-profile: heap allocation counts, legacy vs arena ------------

/// Allocations performed by `run()` alone, net of everything else the
/// process does (single-threaded here, so the delta is exact).
template <typename Run>
std::uint64_t count_allocs(Run&& run) {
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  benchmark::DoNotOptimize(run());
  return g_heap_allocs.load(std::memory_order_relaxed) - before;
}

void run_alloc_profile() {
  std::cout << "== exact-search allocation profile (legacy vs arena) ==\n";
  struct Shape {
    const char* name;
    std::size_t histories, ops;
  };
  const Shape shapes[] = {
      {"small", 3, 8},
      {"contended", 5, 12},
      {"contended_wide", 6, 12},
  };
  struct Point {
    const char* name;
    std::uint64_t states;
    std::uint64_t legacy_heap;
    std::uint64_t arena_heap;
    std::uint64_t arena_bumps;  ///< bump allocations served by the arena
  };
  std::vector<Point> points;
  for (const Shape& shape : shapes) {
    const auto trace = contended_trace(shape.histories, shape.ops, 11);
    const vmc::VmcInstance instance{trace.execution, 0};
    Point point{shape.name, 0, 0, 0, 0};
    // Warm both paths once so one-time lazy init is not billed to either.
    const auto result = vmc::check_exact(instance);
    benchmark::DoNotOptimize(vmc::check_exact_legacy(instance));
    point.states = result.stats.states_visited;
    point.arena_bumps = result.stats.arena_allocations;
    point.legacy_heap =
        count_allocs([&] { return vmc::check_exact_legacy(instance); });
    point.arena_heap = count_allocs([&] { return vmc::check_exact(instance); });
    points.push_back(point);
  }

  TextTable table({"shape", "states", "legacy heap allocs", "arena heap allocs",
                   "arena bumps", "heap ratio"});
  char buf[64];
  for (const Point& point : points) {
    std::snprintf(buf, sizeof buf, "%.1fx",
                  static_cast<double>(point.legacy_heap) /
                      static_cast<double>(std::max<std::uint64_t>(
                          point.arena_heap, 1)));
    table.add_row({point.name, std::to_string(point.states),
                   std::to_string(point.legacy_heap),
                   std::to_string(point.arena_heap),
                   std::to_string(point.arena_bumps), buf});
  }
  table.print(std::cout);

  std::ofstream json("BENCH_alloc_profile.json");
  json << "{\n  \"bench\": \"alloc_profile\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& point = points[i];
    json << "    {\"name\": \"" << point.name << "\", \"states\": "
         << point.states << ", \"legacy_heap_allocs\": " << point.legacy_heap
         << ", \"arena_heap_allocs\": " << point.arena_heap
         << ", \"arena_bump_allocs\": " << point.arena_bumps
         << ", \"heap_alloc_ratio\": "
         << static_cast<double>(point.legacy_heap) /
                static_cast<double>(std::max<std::uint64_t>(point.arena_heap, 1))
         << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_alloc_profile.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --alloc-profile is ours, not google-benchmark's; strip it before
  // Initialize (which rejects flags it does not recognize).
  bool alloc_profile = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--alloc-profile") == 0)
      alloc_profile = true;
    else
      argv[out++] = argv[i];
  }
  argc = out;
  if (alloc_profile) {
    run_alloc_profile();
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_ablation_table();
  return 0;
}
