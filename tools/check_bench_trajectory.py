#!/usr/bin/env python3
"""Cross-PR perf-regression gate over the BENCH_*.json artifacts.

Every JSON-emitting bench drops a BENCH_<name>.json into the working
directory; the committed snapshots under bench/baselines/ are the
trajectory so far. This script compares current artifacts against the
baselines and fails the build when the trajectory bends the wrong way.

Only dimensionless metrics are compared — speedups, scaling slopes,
allocation counts and ratios. Raw seconds and rates depend on the
machine and the build type, so they are recorded but never gated.

Rules:
  - a baselined bench whose artifact is missing from the current run is
    a hard failure (a bench that silently stopped emitting its JSON
    would otherwise retire itself from the gate);
  - any previously recorded higher-is-better metric (speedup, ratio)
    may not drop more than 10% below its baseline;
  - any lower-is-better count (allocation counts) may not rise more
    than 10% above its baseline;
  - scaling slopes get an absolute slack (default 0.35) instead of a
    relative one: slopes are noisy near zero and a ratio test would be
    meaningless there;
  - BENCH_exact_hotpath.json additionally carries hard gates that hold
    regardless of the baseline: differential_ok must be true and the
    minimum allocation-bound speedup must stay >= 2x. The arena rework
    bought that margin; future PRs do not get to spend it.

Metrics present in the current artifact but not the baseline are
reported as new and pass — refresh the baselines to start gating them.

Usage: check_bench_trajectory.py [--baselines DIR] [--current DIR]
                                 [--slope-slack F] [--tolerance F]
Exit 0 when every gate holds, 1 with per-metric diagnostics otherwise.
"""

import argparse
import json
import math
import os
import sys

# Metric-name fragments that mark a value as machine/build dependent:
# recorded in the artifacts, never gated.
TIMING_FRAGMENTS = ("_sec", "_nanos", "_micros", "_ms", "per_sec", "_qps")

# Hard floors that hold independent of any baseline.
HOTPATH_MIN_ALLOC_BOUND_SPEEDUP = 2.0
STREAM_MIN_SUSTAINED_OPS_PER_SEC = 1.0e6
SATURATE_MAX_ROUTED_SLOPE = 1.45
SATURATE_MIN_PRUNE_SPEEDUP = 2.0
SAT_MIN_WARM_SPEEDUP = 2.0
SAT_MIN_PORTFOLIO_RATIO = 0.25


def flatten(value, prefix=""):
    """Yields (dotted_path, scalar) for every scalar in a JSON tree.

    List elements are keyed by a stable identity — a `name` field when
    the element has one, else the index — so sweep points line up even
    if future PRs append new ones.
    """
    if isinstance(value, dict):
        for key, child in value.items():
            yield from flatten(child, f"{prefix}.{key}" if prefix else key)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            tag = child.get("name", str(i)) if isinstance(child, dict) else str(i)
            yield from flatten(child, f"{prefix}[{tag}]")
    elif isinstance(value, bool):
        yield prefix, value
    elif isinstance(value, (int, float)):
        yield prefix, float(value)


def is_timing(path):
    return any(fragment in path for fragment in TIMING_FRAGMENTS)


def direction_of(path):
    """'up' if higher is better, 'down' if lower is better, 'slope' for
    scaling exponents, None when the metric is not gated."""
    leaf = path.rsplit(".", 1)[-1]
    if "slope" in leaf:
        return "slope"
    if "speedup" in leaf or "ratio" in leaf:
        return "up"
    if "alloc" in leaf and not is_timing(leaf):
        return "down"
    return None


def compare_file(name, baseline, current, tolerance, slope_slack):
    """Returns a list of failure strings for one bench artifact."""
    failures = []
    base_metrics = dict(flatten(baseline))
    cur_metrics = dict(flatten(current))

    for path, base in sorted(base_metrics.items()):
        if path not in cur_metrics:
            # Dropping a previously recorded metric silently shrinks the
            # gate; make it visible.
            failures.append(f"{name}: metric '{path}' disappeared "
                            f"(baseline recorded {base})")
            continue
        cur = cur_metrics[path]
        if isinstance(base, bool) or isinstance(cur, bool):
            # Boolean invariants (differential_ok): true may not decay.
            if base is True and cur is not True:
                failures.append(f"{name}: '{path}' was true at baseline, "
                                f"now {cur}")
            continue
        if is_timing(path):
            continue
        direction = direction_of(path)
        if direction == "up":
            floor = base * (1.0 - tolerance)
            if cur < floor:
                failures.append(
                    f"{name}: '{path}' regressed: {cur:.4g} < "
                    f"{floor:.4g} (baseline {base:.4g}, -{tolerance:.0%})")
        elif direction == "down":
            ceiling = base * (1.0 + tolerance)
            if cur > ceiling:
                failures.append(
                    f"{name}: '{path}' regressed: {cur:.4g} > "
                    f"{ceiling:.4g} (baseline {base:.4g}, +{tolerance:.0%})")
        elif direction == "slope":
            if cur > base + slope_slack:
                failures.append(
                    f"{name}: '{path}' regressed: {cur:.3f} > "
                    f"{base:.3f} + {slope_slack} slack")
    return failures


def hotpath_gates(current):
    """Baseline-independent floors for the exact hot path."""
    failures = []
    if current.get("differential_ok") is not True:
        failures.append("exact_hotpath: differential_ok is not true — the "
                        "arena search diverged from the frozen legacy search")
    speedup = current.get("min_alloc_bound_speedup")
    if not isinstance(speedup, (int, float)) or math.isnan(float(speedup)):
        failures.append("exact_hotpath: min_alloc_bound_speedup missing")
    elif speedup < HOTPATH_MIN_ALLOC_BOUND_SPEEDUP:
        failures.append(
            f"exact_hotpath: min alloc-bound speedup {speedup:.2f}x is below "
            f"the {HOTPATH_MIN_ALLOC_BOUND_SPEEDUP}x floor")
    for point in current.get("points", []):
        if point.get("differential_ok") is not True:
            failures.append(
                f"exact_hotpath: point '{point.get('name')}' diverged from "
                "the legacy search")
    return failures


def stream_gates(current):
    """Baseline-independent floors for the streaming ingest pipeline.

    Throughput fields end in per_sec, so the baseline comparison records
    but never gates them (machine-dependent); the sustained floor and the
    two correctness booleans are enforced here instead.
    """
    failures = []
    if current.get("differential_ok") is not True:
        failures.append("stream: differential_ok is not true — streamed "
                        "verdicts diverged from verify_coherence_routed")
    if current.get("memory_bounded_ok") is not True:
        failures.append("stream: memory_bounded_ok is not true — ordered-mode "
                        "resident bytes grew with trace length")
    sustained = current.get("sustained_ops_per_sec")
    if not isinstance(sustained, (int, float)) or math.isnan(float(sustained)):
        failures.append("stream: sustained_ops_per_sec missing")
    elif sustained < STREAM_MIN_SUSTAINED_OPS_PER_SEC:
        failures.append(
            f"stream: sustained ingest rate {sustained:.3g} ops/sec is below "
            f"the {STREAM_MIN_SUSTAINED_OPS_PER_SEC:.0e} floor")
    return failures


def saturate_gates(current):
    """Baseline-independent floors for the coherence-order saturation tier.

    The routed decide path claims near-linear scaling (n*alpha(n) to
    n log n on forced-order traces); the fitted slope gets a hard cap
    well above the claim so baseline drift can never ratchet it into
    quadratic territory. The must-precede oracle must keep paying for
    itself (>= 2x on its best point) and the pruned search must have
    stayed bit-identical to the unpruned one.
    """
    failures = []
    if current.get("differential_ok") is not True:
        failures.append("saturate: differential_ok is not true — the "
                        "saturation tier or the pruned exact search diverged "
                        "from the plain verdicts")
    slope = current.get("routed_slope")
    if not isinstance(slope, (int, float)) or math.isnan(float(slope)):
        failures.append("saturate: routed_slope missing")
    elif slope > SATURATE_MAX_ROUTED_SLOPE:
        failures.append(
            f"saturate: routed decide-path slope n^{slope:.2f} exceeds the "
            f"n^{SATURATE_MAX_ROUTED_SLOPE} cap — the tier is no longer "
            "near-linear on forced-order traces")
    speedup = current.get("max_prune_speedup")
    if not isinstance(speedup, (int, float)) or math.isnan(float(speedup)):
        failures.append("saturate: max_prune_speedup missing")
    elif speedup < SATURATE_MIN_PRUNE_SPEEDUP:
        failures.append(
            f"saturate: best prune speedup {speedup:.2f}x is below the "
            f"{SATURATE_MIN_PRUNE_SPEEDUP}x floor")
    for point in current.get("prune_points", []):
        if point.get("differential_ok") is not True:
            failures.append(
                f"saturate: prune point '{point.get('name')}' diverged from "
                "the unpruned search")
    return failures


def sat_gates(current):
    """Baseline-independent floors for the incremental SAT core.

    The warm kVscc sweep bought >= 2x over per-query cold re-encodes at
    the largest bench point; that margin is a hard floor, not baseline
    slack. differential_ok covers warm-vs-cold statuses, the suffix
    extension, and portfolio verdict equality — a speedup from changed
    semantics never passes. The portfolio race is tail-latency
    insurance, so it is allowed to cost wall clock on instances a single
    engine handles well, but only up to a 4x overhead ceiling
    (default/race ratio >= 0.25)."""
    failures = []
    if current.get("differential_ok") is not True:
        failures.append("sat_incremental: differential_ok is not true — warm "
                        "sweep, suffix extension, or portfolio verdicts "
                        "diverged from the cold paths")
    speedup = current.get("warm_speedup_largest")
    if not isinstance(speedup, (int, float)) or math.isnan(float(speedup)):
        failures.append("sat_incremental: warm_speedup_largest missing")
    elif speedup < SAT_MIN_WARM_SPEEDUP:
        failures.append(
            f"sat_incremental: warm sweep speedup {speedup:.2f}x at the "
            f"largest kVscc point is below the {SAT_MIN_WARM_SPEEDUP}x floor")
    ratio = current.get("portfolio_default_over_race")
    if not isinstance(ratio, (int, float)) or math.isnan(float(ratio)):
        failures.append("sat_incremental: portfolio_default_over_race missing")
    elif ratio < SAT_MIN_PORTFOLIO_RATIO:
        failures.append(
            f"sat_incremental: portfolio race costs {1 / ratio:.1f}x the "
            f"default exact tier — above the "
            f"{1 / SAT_MIN_PORTFOLIO_RATIO:.0f}x overhead ceiling")
    for point in current.get("points", []):
        if point.get("differential_ok") is not True:
            failures.append(
                f"sat_incremental: point '{point.get('name')}' warm statuses "
                "diverged from the cold re-encodes")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed BENCH_*.json snapshots")
    parser.add_argument("--current", default=".",
                        help="directory holding this run's BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative slack for ratio-like metrics")
    parser.add_argument("--slope-slack", type=float, default=0.35,
                        help="absolute slack for scaling slopes")
    args = parser.parse_args()

    if not os.path.isdir(args.baselines):
        print(f"baseline directory '{args.baselines}' not found",
              file=sys.stderr)
        return 1

    names = sorted(f for f in os.listdir(args.baselines)
                   if f.startswith("BENCH_") and f.endswith(".json"))
    if not names:
        print(f"no BENCH_*.json baselines under '{args.baselines}'",
              file=sys.stderr)
        return 1

    failures = []
    compared = 0
    for name in names:
        with open(os.path.join(args.baselines, name)) as f:
            baseline = json.load(f)
        current_path = os.path.join(args.current, name)
        if not os.path.exists(current_path):
            failures.append(f"{name}: baselined bench artifact missing from "
                            f"'{args.current}' — did its bench stop emitting?")
            continue
        with open(current_path) as f:
            current = json.load(f)
        failures.extend(compare_file(name, baseline, current,
                                     args.tolerance, args.slope_slack))
        if name == "BENCH_exact_hotpath.json":
            failures.extend(hotpath_gates(current))
        if name == "BENCH_stream.json":
            failures.extend(stream_gates(current))
        if name == "BENCH_saturate.json":
            failures.extend(saturate_gates(current))
        if name == "BENCH_sat_incremental.json":
            failures.extend(sat_gates(current))
        compared += 1

    # Surface new artifacts that have no baseline yet (informational).
    extra = sorted(f for f in os.listdir(args.current)
                   if f.startswith("BENCH_") and f.endswith(".json")
                   and f not in names)
    for name in extra:
        print(f"note: {name} has no baseline yet; copy it into "
              f"{args.baselines}/ to start gating it")

    if failures:
        print(f"trajectory check FAILED ({len(failures)} violation(s) "
              f"across {compared} benches):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"trajectory check passed: {compared} benches within tolerance "
          f"(ratio {args.tolerance:.0%}, slope +{args.slope_slack})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
