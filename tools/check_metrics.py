#!/usr/bin/env python3
"""Schema check for vermemd --metrics-out Prometheus text output.

Validates the exposition format the obs registry and ServiceStats emit:
  - every non-comment line is `name[{labels}] value` with an optional
    OpenMetrics exemplar suffix (`# {flight_id="N"} value`)
  - every sample name (label-stripped, histogram suffixes folded) is
    covered by a preceding # TYPE line
  - histogram le buckets are cumulative per label set (minus le) and
    every label set ends with a +Inf bucket
  - all names carry the vermem_ prefix

Usage: check_metrics.py FILE [--require NAME ...]
Exit 0 on success, 1 with a diagnostic on the first violation.
"""

import re
import sys

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? ([0-9.eE+-]+|NaN)'
    r'( # \{[^}]*\} [0-9.eE+-]+)?$')
TYPE_RE = re.compile(r'^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$')


def base_of(name: str, types: dict) -> str:
    """Folds histogram sample suffixes back onto the declared base name."""
    for suffix in ('_bucket', '_sum', '_count'):
        if name.endswith(suffix):
            base = name[:-len(suffix)]
            if types.get(base) == 'histogram':
                return base
    return name


def check(path: str, required: list) -> int:
    types = {}
    seen = set()
    # (base, labels-minus-le) -> (last cumulative, saw +Inf): labeled
    # histograms (e.g. per-kind latency) keep one cumulative sequence
    # per series, not one per family.
    hist_state = {}
    with open(path, encoding='utf-8') as handle:
        for lineno, raw in enumerate(handle, 1):
            line = raw.rstrip('\n')
            if not line:
                continue
            where = f'{path}:{lineno}'
            type_match = TYPE_RE.match(line)
            if type_match:
                name, _ = type_match.groups()
                if name in types:
                    print(f'{where}: duplicate # TYPE for {name}')
                    return 1
                types[name] = type_match.group(2)
                continue
            if line.startswith('#'):
                continue
            sample = SAMPLE_RE.match(line)
            if not sample:
                print(f'{where}: malformed sample line: {line!r}')
                return 1
            name, labels, value, exemplar = sample.groups()
            base = base_of(name, types)
            if not base.startswith('vermem_'):
                print(f'{where}: sample {name} lacks the vermem_ prefix')
                return 1
            if base not in types:
                print(f'{where}: sample {name} has no preceding # TYPE line')
                return 1
            seen.add(base)
            if exemplar and not (types[base] == 'histogram' and
                                 name.endswith('_bucket')):
                print(f'{where}: exemplar on a non-bucket sample: {line!r}')
                return 1
            if types[base] == 'histogram' and name.endswith('_bucket'):
                le = re.search(r'le="([^"]+)"', labels or '')
                if not le:
                    print(f'{where}: histogram bucket without le label')
                    return 1
                series = re.sub(r',?le="[^"]*"', '', labels or '')
                key = (base, series)
                cumulative, _ = hist_state.get(key, (0.0, False))
                count = float(value)
                if count < cumulative:
                    print(f'{where}: non-cumulative bucket for {base}{series}')
                    return 1
                hist_state[key] = (count, le.group(1) == '+Inf')
    for (base, series), (_, saw_inf) in hist_state.items():
        if not saw_inf:
            print(f'{path}: histogram {base}{series} missing le="+Inf" bucket')
            return 1
    missing = [name for name in required if name not in seen]
    if missing:
        print(f'{path}: required metrics absent: {", ".join(missing)}')
        return 1
    print(f'{path}: OK ({len(seen)} metric families)')
    return 0


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 1
    path = argv[1]
    required = []
    if '--require' in argv:
        required = argv[argv.index('--require') + 1:]
    return check(path, required)


if __name__ == '__main__':
    sys.exit(main(sys.argv))
