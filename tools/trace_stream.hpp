#pragma once
// Shared input plumbing for the deployable CLIs (vermemd, vermemlint):
// loading trace sources from files or a multi-trace stdin stream
// (traces separated by "---" lines), splitting out "wo " write-order
// lines, and minimal JSON string escaping for the one-line-per-trace
// output format.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"

namespace vermem::tools {

// JSON string helpers now live in support/json.hpp, shared with
// vermemcert; re-exported here for the emitters in this layer.
using vermem::json_escape;

/// One trace's text, split into execution directives and write-order
/// ("wo ...") lines, plus a display tag (file name or stdin[i]).
struct TraceSource {
  std::string tag;
  std::string execution_text;
  std::string write_order_text;
};

inline void split_wo_lines(const std::string& text, TraceSource& out) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const bool is_wo = line.rfind("wo ", 0) == 0 || line == "wo";
    (is_wo ? out.write_order_text : out.execution_text) += line;
    (is_wo ? out.write_order_text : out.execution_text) += '\n';
  }
}

/// Splits an already-read multi-trace text stream (traces separated by
/// "---" lines) into sources tagged "<tag_prefix>[i]".
inline void split_concatenated_sources(const std::string& all,
                                       const std::string& tag_prefix,
                                       std::vector<TraceSource>& sources) {
  std::size_t count = 0;
  std::istringstream lines(all);
  std::string line;
  std::string chunk;
  auto flush = [&] {
    if (chunk.find_first_not_of(" \t\r\n") == std::string::npos) {
      chunk.clear();
      return;
    }
    TraceSource current;
    current.tag = tag_prefix + "[" + std::to_string(count++) + "]";
    split_wo_lines(chunk, current);
    sources.push_back(std::move(current));
    chunk.clear();
  };
  while (std::getline(lines, line)) {
    if (line.find_first_not_of('-') == std::string::npos && line.size() >= 3) {
      flush();
    } else {
      chunk += line;
      chunk += '\n';
    }
  }
  flush();
}

/// Loads sources from the given paths, or from stdin when `paths` is
/// empty (splitting the stream into traces on "---" separator lines).
/// On an unreadable file prints a message to stderr and returns false.
inline bool load_trace_sources(const std::vector<std::string>& paths,
                               std::vector<TraceSource>& sources) {
  if (paths.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    split_concatenated_sources(buffer.str(), "stdin", sources);
    return true;
  }
  for (const std::string& path : paths) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    TraceSource source;
    source.tag = path;
    split_wo_lines(buffer.str(), source);
    sources.push_back(std::move(source));
  }
  return true;
}

inline bool parse_size_arg(const std::string& arg, std::size_t prefix_len,
                           std::size_t& out) {
  try {
    out = static_cast<std::size_t>(std::stoull(arg.substr(prefix_len)));
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace vermem::tools
