// vermemlint: standalone static trace linter. Runs the analysis
// subsystem (Figure 5.3 fragment classification + the W/I rule catalog,
// see docs/ANALYSIS.md) over recorded traces WITHOUT deciding
// coherence: a pure O(n) static pass, suitable as a pre-submit gate in
// a trace-collection pipeline or a CI check on trace corpora.
//
// Usage:
//   vermemlint [--json|--text] [--no-info] [--version] [FILE...]
//
// Input conventions match vermemd: each FILE is one text_io trace with
// optional "wo " write-order lines; with no FILE, stdin may hold
// several traces separated by "---" lines.
//
// --json (default) emits one JSON object per trace: the same "analysis"
// shape vermemd --analyze embeds (fragments per address, diagnostics
// with rule ID/severity/op location). --text prints compiler-style
// "tag: severity rule: message" lines. --no-info suppresses
// informational (I-rule) diagnostics in text mode.
//
// Exit codes:
//   0  no warning-severity rule fired on any trace
//   1  at least one warning-severity diagnostic (W001..W004)
//   2  usage or parse error

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis_json.hpp"
#include "support/format.hpp"
#include "trace/text_io.hpp"
#include "trace_stream.hpp"

namespace {

using namespace vermem;

int usage() {
  std::fprintf(
      stderr,
      "usage: vermemlint [--json|--text] [--no-info] [--version] [FILE...]\n");
  return 2;
}

/// Lint output for earlier traces may already sit in stdio buffers when
/// a later trace fails to parse; flush so a piped consumer keeps it.
int fatal_exit() {
  std::fflush(stdout);
  return 2;
}

void print_text(const std::string& tag,
                const analysis::AnalysisReport& report, bool show_info) {
  for (const analysis::AddressAnalysis& address : report.addresses) {
    for (const analysis::Diagnostic& diagnostic : address.diagnostics) {
      if (!show_info && diagnostic.severity == analysis::Severity::kInfo)
        continue;
      std::string where = tag + ": addr " + std::to_string(diagnostic.addr);
      if (diagnostic.location)
        where += " P" + std::to_string(diagnostic.location->process) + "#" +
                 std::to_string(diagnostic.location->index);
      std::printf("%s: %s %s [%s]: %s\n", where.c_str(),
                  to_string(diagnostic.severity), rule_code(diagnostic.rule),
                  rule_name(diagnostic.rule), diagnostic.message.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = true;
  bool show_info = true;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json")
      json = true;
    else if (arg == "--text")
      json = false;
    else if (arg == "--no-info")
      show_info = false;
    else if (arg == "--version") {
      std::printf("vermemlint %.*s\n", static_cast<int>(kVermemVersion.size()),
                  kVermemVersion.data());
      return 0;
    } else if (arg.rfind("--", 0) == 0)
      return usage();
    else
      paths.push_back(arg);
  }

  std::vector<tools::TraceSource> sources;
  if (!tools::load_trace_sources(paths, sources)) return 2;
  if (sources.empty()) {
    std::fprintf(stderr, "no traces to lint\n");
    return 2;
  }

  bool any_warning = false;
  for (const tools::TraceSource& source : sources) {
    ParseResult parsed = parse_execution(source.execution_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: parse error at line %zu: %s\n",
                   source.tag.c_str(), parsed.line, parsed.error.c_str());
      return fatal_exit();
    }
    vmc::WriteOrderMap orders;
    bool have_orders = false;
    if (!source.write_order_text.empty()) {
      WriteOrderParseResult parsed_orders =
          parse_write_orders(source.write_order_text);
      if (!parsed_orders.ok()) {
        std::fprintf(stderr, "%s: write-order parse error: %s\n",
                     source.tag.c_str(), parsed_orders.error.c_str());
        return fatal_exit();
      }
      orders.insert(parsed_orders.orders.begin(), parsed_orders.orders.end());
      have_orders = true;
    }

    const analysis::AnalysisReport report =
        analysis::analyze(parsed.execution, have_orders ? &orders : nullptr);
    if (report.has_warnings()) any_warning = true;
    if (json) {
      std::printf("{\"trace\":\"%s\",\"analysis\":%s}\n",
                  tools::json_escape(source.tag).c_str(),
                  tools::analysis_json(report).c_str());
    } else {
      print_text(source.tag, report, show_info);
    }
  }
  return any_warning ? 1 : 0;
}
