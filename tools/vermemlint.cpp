// vermemlint: standalone static trace linter. Runs the analysis
// subsystem (Figure 5.3 fragment classification + the W/I rule catalog,
// see docs/ANALYSIS.md) over recorded traces WITHOUT deciding
// coherence: a static pass suitable as a pre-submit gate in a
// trace-collection pipeline or a CI check on trace corpora.
//
// Usage:
//   vermemlint [--format=text|json|sarif] [--no-info] [--version] [FILE...]
//
// Input conventions match vermemd: each FILE is one trace, either
// text_io format (with optional "wo " write-order lines) or a binary
// VMTB trace — auto-detected by the "VMTB" magic, per file and on
// stdin. With no FILE, text stdin may hold several traces separated by
// "---" lines; binary stdin is one trace.
//
// --format=text (default) prints compiler-style
// "tag: severity rule: message" lines. --format=json emits one JSON
// object per trace: the same "analysis" shape vermemd --analyze embeds
// (fragments per address, diagnostics with rule ID/severity/op
// location). --format=sarif emits one SARIF 2.1.0 document for the
// whole invocation (results carry the trace tag as the artifact URI).
// --json/--text remain as aliases. --no-info suppresses informational
// (I-rule) diagnostics in text and SARIF output.
//
// Exit codes:
//   0  no warning-severity rule fired on any trace
//   1  at least one warning-severity diagnostic (W001..W006)
//   2  usage or parse error

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis_json.hpp"
#include "support/format.hpp"
#include "trace/binary_io.hpp"
#include "trace/text_io.hpp"
#include "trace_stream.hpp"

namespace {

using namespace vermem;

enum class Format : std::uint8_t { kText, kJson, kSarif };

int usage() {
  std::fprintf(stderr,
               "usage: vermemlint [--format=text|json|sarif] [--no-info] "
               "[--version] [FILE...]\n");
  return 2;
}

/// Lint output for earlier traces may already sit in stdio buffers when
/// a later trace fails to parse; flush so a piped consumer keeps it.
int fatal_exit() {
  std::fflush(stdout);
  return 2;
}

void print_text(const std::string& tag,
                const analysis::AnalysisReport& report, bool show_info) {
  for (const analysis::AddressAnalysis& address : report.addresses) {
    for (const analysis::Diagnostic& diagnostic : address.diagnostics) {
      if (!show_info && diagnostic.severity == analysis::Severity::kInfo)
        continue;
      std::string where = tag + ": addr " + std::to_string(diagnostic.addr);
      if (diagnostic.location)
        where += " P" + std::to_string(diagnostic.location->process) + "#" +
                 std::to_string(diagnostic.location->index);
      std::printf("%s: %s %s [%s]: %s\n", where.c_str(),
                  to_string(diagnostic.severity), rule_code(diagnostic.rule),
                  rule_name(diagnostic.rule), diagnostic.message.c_str());
    }
  }
}

/// One SARIF result: a diagnostic plus the trace it came from.
struct SarifResult {
  analysis::Diagnostic diagnostic;
  std::string trace;
};

std::string sarif_document(const std::vector<SarifResult>& results) {
  constexpr analysis::RuleId kCatalog[] = {
      analysis::RuleId::kDuplicateValueWrite,
      analysis::RuleId::kUnreadWrite,
      analysis::RuleId::kRmwAtomicityCandidate,
      analysis::RuleId::kInconsistentWriteOrderLog,
      analysis::RuleId::kUnorderedWritePair,
      analysis::RuleId::kSaturationContradictedLog,
      analysis::RuleId::kFragmentClassification,
  };
  std::string out =
      "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"vermemlint\",\"version\":\"";
  out.append(kVermemVersion.data(), kVermemVersion.size());
  out += "\",\"rules\":[";
  bool first = true;
  for (const analysis::RuleId rule : kCatalog) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":\"";
    out += rule_code(rule);
    out += "\",\"name\":\"";
    out += rule_name(rule);
    out += "\"}";
  }
  out += "]}},\"results\":[";
  first = true;
  for (const SarifResult& result : results) {
    const analysis::Diagnostic& d = result.diagnostic;
    if (!first) out += ",";
    first = false;
    out += "{\"ruleId\":\"";
    out += rule_code(d.rule);
    out += "\",\"level\":\"";
    out += d.severity == analysis::Severity::kWarning ? "warning" : "note";
    out += "\",\"message\":{\"text\":\"" + tools::json_escape(d.message) +
           "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
           "{\"uri\":\"" +
           tools::json_escape(result.trace) + "\"}},\"logicalLocations\":[{"
           "\"fullyQualifiedName\":\"addr " + std::to_string(d.addr);
    if (d.location)
      out += " P" + std::to_string(d.location->process) + "#" +
             std::to_string(d.location->index);
    out += "\"}]}]}";
  }
  out += "]}]}";
  return out;
}

/// One input trace, parsed from either format into lintable form.
struct LintInput {
  std::string tag;
  Execution execution;
  vmc::WriteOrderMap orders;
  bool have_orders = false;
};

/// Parses one text-format trace source. Returns false after printing a
/// parse error.
bool parse_text_source(const tools::TraceSource& source,
                       std::vector<LintInput>& inputs) {
  ParseResult parsed = parse_execution(source.execution_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: parse error at line %zu: %s\n",
                 source.tag.c_str(), parsed.line, parsed.error.c_str());
    return false;
  }
  LintInput input;
  input.tag = source.tag;
  input.execution = std::move(parsed.execution);
  if (!source.write_order_text.empty()) {
    WriteOrderParseResult parsed_orders =
        parse_write_orders(source.write_order_text);
    if (!parsed_orders.ok()) {
      std::fprintf(stderr, "%s: write-order parse error: %s\n",
                   source.tag.c_str(), parsed_orders.error.c_str());
      return false;
    }
    input.orders.insert(parsed_orders.orders.begin(),
                        parsed_orders.orders.end());
    input.have_orders = true;
  }
  inputs.push_back(std::move(input));
  return true;
}

/// Decodes one binary (VMTB) trace. Returns false after printing a
/// decode error.
bool parse_binary_source(const std::string& tag, const std::string& bytes,
                         std::vector<LintInput>& inputs) {
  BinaryParseResult parsed = decode_binary(bytes);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: binary decode error at byte %llu: %s\n",
                 tag.c_str(),
                 static_cast<unsigned long long>(parsed.byte_offset),
                 parsed.error.c_str());
    return false;
  }
  LintInput input;
  input.tag = tag;
  input.execution = std::move(parsed.execution);
  if (!parsed.write_orders.empty()) {
    input.orders.insert(parsed.write_orders.begin(),
                        parsed.write_orders.end());
    input.have_orders = true;
  }
  inputs.push_back(std::move(input));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Format format = Format::kText;
  bool show_info = true;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg == "--format=json")
      format = Format::kJson;
    else if (arg == "--text" || arg == "--format=text")
      format = Format::kText;
    else if (arg == "--format=sarif")
      format = Format::kSarif;
    else if (arg == "--no-info")
      show_info = false;
    else if (arg == "--version") {
      std::printf("vermemlint %.*s\n", static_cast<int>(kVermemVersion.size()),
                  kVermemVersion.data());
      return 0;
    } else if (arg.rfind("--", 0) == 0)
      return usage();
    else
      paths.push_back(arg);
  }

  // Load and parse every input before emitting anything: a malformed
  // trace is a clean exit-2. Binary traces are auto-detected by their
  // "VMTB" magic, per file and on (whole) stdin, exactly like vermemd.
  std::vector<LintInput> inputs;
  if (paths.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    std::string all = buffer.str();
    if (looks_like_binary_trace(all)) {
      if (!parse_binary_source("stdin", all, inputs)) return fatal_exit();
    } else {
      std::vector<tools::TraceSource> split;
      tools::split_concatenated_sources(all, "stdin", split);
      for (const tools::TraceSource& source : split)
        if (!parse_text_source(source, inputs)) return fatal_exit();
    }
  } else {
    for (const std::string& path : paths) {
      std::ifstream file(path, std::ios::binary);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      std::string data = buffer.str();
      if (looks_like_binary_trace(data)) {
        if (!parse_binary_source(path, data, inputs)) return fatal_exit();
      } else {
        tools::TraceSource source;
        source.tag = path;
        tools::split_wo_lines(data, source);
        if (!parse_text_source(source, inputs)) return fatal_exit();
      }
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "no traces to lint\n");
    return 2;
  }

  bool any_warning = false;
  std::vector<SarifResult> sarif_results;
  for (const LintInput& input : inputs) {
    const analysis::AnalysisReport report = analysis::analyze(
        input.execution, input.have_orders ? &input.orders : nullptr);
    if (report.has_warnings()) any_warning = true;
    switch (format) {
      case Format::kJson:
        std::printf("{\"trace\":\"%s\",\"analysis\":%s}\n",
                    tools::json_escape(input.tag).c_str(),
                    tools::analysis_json(report).c_str());
        break;
      case Format::kText:
        print_text(input.tag, report, show_info);
        break;
      case Format::kSarif:
        for (const analysis::AddressAnalysis& address : report.addresses)
          for (const analysis::Diagnostic& diagnostic : address.diagnostics) {
            if (!show_info &&
                diagnostic.severity == analysis::Severity::kInfo)
              continue;
            sarif_results.push_back({diagnostic, input.tag});
          }
        break;
    }
  }
  if (format == Format::kSarif)
    std::printf("%s\n", sarif_document(sarif_results).c_str());
  return any_warning ? 1 : 0;
}
