// vermemcert: the independent certificate checker. Reads vermemd
// --certify JSON verdict lines on stdin, re-validates every embedded
// certificate against the raw traces with certify::check(), and prints
// one line per certificate. It shares no decision state with the
// producer: verdicts are confirmed from the trace text and the
// certificate alone, so a bug in the service or the deciders cannot
// vouch for itself.
//
// Usage:
//   vermemd --certify TRACE... | vermemcert [--max-states=N] TRACE...
//
// Each TRACE is a trace file in the text_io format; it must be the same
// file (same path) that was handed to vermemd, because stdin lines are
// matched to traces by their "trace" tag. Lines without a "certs" field
// (e.g. consistency-mode verdicts) are ignored.
//
// Exit codes:
//   0  at least one certificate was seen and every one checked
//   1  at least one certificate failed to check
//   2  usage error, unreadable/unparsable trace, malformed stdin, or no
//      certificates found (an empty check proves nothing)

#include <cstdio>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "certify/check.hpp"
#include "certify/text.hpp"
#include "support/json.hpp"
#include "trace/text_io.hpp"
#include "trace_stream.hpp"

namespace {

using namespace vermem;

int usage() {
  std::fprintf(stderr,
               "usage: vermemcert [--max-states=N] TRACE [TRACE...]\n"
               "reads vermemd --certify JSON lines on stdin; TRACE files\n"
               "must match the ones vermemd verified\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  certify::CheckOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--max-states=", 0) == 0) {
      std::size_t states = 0;
      if (!tools::parse_size_arg(arg, 13, states)) return usage();
      options.max_states = states;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  std::vector<tools::TraceSource> sources;
  if (!tools::load_trace_sources(paths, sources)) return 2;
  std::unordered_map<std::string, Execution> executions;
  for (const tools::TraceSource& source : sources) {
    ParseResult parsed = parse_execution(source.execution_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: parse error at line %zu: %s\n",
                   source.tag.c_str(), parsed.line, parsed.error.c_str());
      return 2;
    }
    executions.emplace(source.tag, std::move(parsed.execution));
  }

  std::size_t checked = 0;
  std::size_t failed = 0;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto certs = json_string_array_field(line, "certs");
    if (!certs) continue;  // a verdict line without certificates
    const auto tag = json_string_field(line, "trace");
    if (!tag) {
      std::fprintf(stderr, "stdin:%zu: no \"trace\" tag\n", line_number);
      return 2;
    }
    const auto exec = executions.find(*tag);
    if (exec == executions.end()) {
      std::fprintf(stderr, "stdin:%zu: trace \"%s\" was not given on the "
                   "command line\n", line_number, tag->c_str());
      return 2;
    }
    for (std::size_t i = 0; i < certs->size(); ++i) {
      const certify::ParseResult parsed = certify::parse_certificates((*certs)[i]);
      if (!parsed.ok || parsed.certs.size() != 1) {
        std::fprintf(stderr, "stdin:%zu: cert %zu does not parse: %s\n",
                     line_number, i,
                     parsed.ok ? "expected exactly one certificate"
                               : parsed.error.c_str());
        return 2;
      }
      const certify::Certificate& cert = parsed.certs[0];
      const certify::CheckOutcome outcome =
          certify::check(exec->second, cert, options);
      ++checked;
      if (outcome.ok) {
        std::printf("%s cert %zu (%s a%u %s): OK\n", tag->c_str(), i,
                    to_string(cert.scope), cert.addr,
                    vmc::to_string(cert.verdict));
      } else {
        ++failed;
        std::printf("%s cert %zu (%s a%u %s): FAIL: %s\n", tag->c_str(), i,
                    to_string(cert.scope), cert.addr,
                    vmc::to_string(cert.verdict), outcome.violation.c_str());
      }
    }
  }

  if (checked == 0) {
    std::fprintf(stderr, "no certificates found on stdin\n");
    return 2;
  }
  std::printf("%zu certificate%s checked, %zu failed\n", checked,
              checked == 1 ? "" : "s", failed);
  return failed == 0 ? 0 : 1;
}
