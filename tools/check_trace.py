#!/usr/bin/env python3
"""Validity check for vermemd --trace-out Chrome trace-event JSON.

Asserts what a viewer (Perfetto / chrome://tracing) needs to load the
file and what the span tracer guarantees:
  - the file is well-formed JSON with a traceEvents array
  - every event is a complete ("X") event with name, ts, dur, pid, tid
  - ts is monotonically non-decreasing within each tid (export is
    start-ordered per thread) and dur is non-negative (all spans closed)
  - parent links reference a span id that exists (0 = root)

Usage: check_trace.py FILE [--min-events N]
Exit 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys


def check(path: str, min_events: int) -> int:
    with open(path, encoding='utf-8') as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            print(f'{path}: not valid JSON: {err}')
            return 1
    events = doc.get('traceEvents')
    if not isinstance(events, list):
        print(f'{path}: missing traceEvents array')
        return 1
    if len(events) < min_events:
        print(f'{path}: only {len(events)} events, expected >= {min_events}')
        return 1
    ids = {0}
    last_ts = {}
    for i, event in enumerate(events):
        for key in ('name', 'ph', 'ts', 'dur', 'pid', 'tid'):
            if key not in event:
                print(f'{path}: event {i} missing {key!r}')
                return 1
        if event['ph'] != 'X':
            print(f'{path}: event {i} has ph={event["ph"]!r}, expected "X"')
            return 1
        if event['dur'] < 0:
            print(f'{path}: event {i} ({event["name"]}) has negative dur '
                  f'(span not closed?)')
            return 1
        tid = event['tid']
        if event['ts'] < last_ts.get(tid, float('-inf')):
            print(f'{path}: event {i} ({event["name"]}) breaks ts monotonicity '
                  f'within tid {tid}')
            return 1
        last_ts[tid] = event['ts']
        args = event.get('args', {})
        if 'id' in args:
            ids.add(args['id'])
    for i, event in enumerate(events):
        parent = event.get('args', {}).get('parent', 0)
        if parent not in ids:
            print(f'{path}: event {i} ({event["name"]}) references unknown '
                  f'parent span {parent}')
            return 1
    print(f'{path}: OK ({len(events)} events, {len(last_ts)} threads)')
    return 0


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 1
    min_events = 1
    if '--min-events' in argv:
        min_events = int(argv[argv.index('--min-events') + 1])
    return check(argv[1], min_events)


if __name__ == '__main__':
    sys.exit(main(sys.argv))
