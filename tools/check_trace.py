#!/usr/bin/env python3
"""Validity checks for vermem trace artifacts.

Default mode validates vermemd --trace-out Chrome trace-event JSON —
what a viewer (Perfetto / chrome://tracing) needs to load the file and
what the span tracer guarantees:
  - the file is well-formed JSON with a traceEvents array
  - every event is a complete ("X") event with name, ts, dur, pid, tid
  - ts is monotonically non-decreasing within each tid (export is
    start-ordered per thread) and dur is non-negative (all spans closed)
  - parent links reference a span id that exists (0 = root)

--binary mode validates a binary trace header (the "VMTB" format of
src/trace/binary_io.hpp, normative spec in docs/FORMATS.md):
  - magic "VMTB", known version, no unknown flag bits
  - num_processes / total_ops decode as minimal LEB128 varints and stay
    under the decoder's hard limits
Payload integrity past the header is the C++ decoder's job (vermemconv
round-trips in CI cover it); this guards the envelope a foreign producer
is most likely to get wrong.

Usage: check_trace.py FILE [--min-events N] [--binary]
Exit 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

BINARY_MAGIC = b'VMTB'
BINARY_VERSION = 1
BINARY_KNOWN_FLAGS = 0x03  # bit0 ordered, bit1 write-order section
MAX_PROCESSES = 1 << 20
MAX_OPS = 1 << 32


def read_varint(data: bytes, offset: int):
    """Decodes one minimal LEB128 varint; returns (value, next_offset)."""
    value = 0
    shift = 0
    start = offset
    while True:
        if offset >= len(data):
            raise ValueError(f'truncated varint at byte {start}')
        if offset - start >= 10:
            raise ValueError(f'oversized varint at byte {start}')
        byte = data[offset]
        value |= (byte & 0x7F) << shift
        offset += 1
        if not byte & 0x80:
            if byte == 0 and offset - start > 1:
                raise ValueError(f'non-minimal varint at byte {start}')
            return value, offset
        shift += 7


def check_binary(path: str) -> int:
    with open(path, 'rb') as handle:
        data = handle.read(64)  # header envelope only
    if len(data) < 6:
        print(f'{path}: too short for a binary trace header '
              f'({len(data)} bytes)')
        return 1
    if data[:4] != BINARY_MAGIC:
        print(f'{path}: bad magic {data[:4]!r}, expected {BINARY_MAGIC!r}')
        return 1
    version = data[4]
    if version != BINARY_VERSION:
        print(f'{path}: unknown version {version}, expected {BINARY_VERSION}')
        return 1
    flags = data[5]
    if flags & ~BINARY_KNOWN_FLAGS:
        print(f'{path}: unknown flag bits 0x{flags & ~BINARY_KNOWN_FLAGS:02x}')
        return 1
    try:
        num_processes, offset = read_varint(data, 6)
        total_ops, _ = read_varint(data, offset)
    except ValueError as err:
        print(f'{path}: {err}')
        return 1
    if num_processes > MAX_PROCESSES:
        print(f'{path}: declared {num_processes} processes exceeds the '
              f'decoder limit {MAX_PROCESSES}')
        return 1
    if total_ops > MAX_OPS:
        print(f'{path}: declared {total_ops} ops exceeds the decoder '
              f'limit {MAX_OPS}')
        return 1
    ordered = 'ordered' if flags & 0x01 else 'complete'
    orders = '+write-orders' if flags & 0x02 else ''
    print(f'{path}: OK (v{version} {ordered}{orders}, '
          f'{num_processes} processes, {total_ops} ops)')
    return 0


def check(path: str, min_events: int) -> int:
    with open(path, encoding='utf-8') as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            print(f'{path}: not valid JSON: {err}')
            return 1
    events = doc.get('traceEvents')
    if not isinstance(events, list):
        print(f'{path}: missing traceEvents array')
        return 1
    if len(events) < min_events:
        print(f'{path}: only {len(events)} events, expected >= {min_events}')
        return 1
    ids = {0}
    last_ts = {}
    for i, event in enumerate(events):
        for key in ('name', 'ph', 'ts', 'dur', 'pid', 'tid'):
            if key not in event:
                print(f'{path}: event {i} missing {key!r}')
                return 1
        if event['ph'] != 'X':
            print(f'{path}: event {i} has ph={event["ph"]!r}, expected "X"')
            return 1
        if event['dur'] < 0:
            print(f'{path}: event {i} ({event["name"]}) has negative dur '
                  f'(span not closed?)')
            return 1
        tid = event['tid']
        if event['ts'] < last_ts.get(tid, float('-inf')):
            print(f'{path}: event {i} ({event["name"]}) breaks ts monotonicity '
                  f'within tid {tid}')
            return 1
        last_ts[tid] = event['ts']
        args = event.get('args', {})
        if 'id' in args:
            ids.add(args['id'])
    for i, event in enumerate(events):
        parent = event.get('args', {}).get('parent', 0)
        if parent not in ids:
            print(f'{path}: event {i} ({event["name"]}) references unknown '
                  f'parent span {parent}')
            return 1
    print(f'{path}: OK ({len(events)} events, {len(last_ts)} threads)')
    return 0


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 1
    if '--binary' in argv:
        return check_binary(argv[1])
    min_events = 1
    if '--min-events' in argv:
        min_events = int(argv[argv.index('--min-events') + 1])
    return check(argv[1], min_events)


if __name__ == '__main__':
    sys.exit(main(sys.argv))
