// vermemconv: convert traces between the text format (text_io,
// docs/TRACE_FORMAT.md) and the binary streaming format (binary_io,
// docs/FORMATS.md).
//
// Usage:
//   vermemconv [--to-text|--to-binary] [-o FILE] [FILE]
//
// Reads FILE (or stdin) whole, auto-detects the input format by the
// "VMTB" magic, and writes the other format to stdout (or -o FILE).
// --to-text / --to-binary force the *output* format instead; forcing
// the format the input already has canonicalizes it (parse + re-emit),
// which is how CI pins the byte-identical round-trip: both directions
// re-serialize deterministically, so
//
//   vermemconv --to-binary t.txt | vermemconv --to-text
//
// reproduces the canonical text form byte for byte.
//
// Text input may carry "wo " write-order lines; they travel through the
// binary write-order section and come back as "wo " lines. The ordered
// flag of a binary input survives text round-trips only if the event
// order is canonical (per-process blocks); vermemconv prints a warning
// when converting an ordered binary trace to text, because the text
// format cannot represent an interleaving.
//
// Exit codes: 0 converted, 2 usage/parse/io error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/binary_io.hpp"
#include "trace/text_io.hpp"
#include "trace_stream.hpp"

namespace {

using namespace vermem;

int usage() {
  std::fprintf(stderr,
               "usage: vermemconv [--to-text|--to-binary] [-o FILE] [FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Target : std::uint8_t { kAuto, kText, kBinary };
  Target target = Target::kAuto;
  std::string out_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--to-text")
      target = Target::kText;
    else if (arg == "--to-binary")
      target = Target::kBinary;
    else if (arg == "-o") {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (arg.rfind("-o", 0) == 0 && arg.size() > 2)
      out_path = arg.substr(2);
    else if (arg.rfind("--", 0) == 0)
      return usage();
    else
      paths.push_back(arg);
  }
  if (paths.size() > 1) return usage();

  std::string input;
  if (paths.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    input = buffer.str();
  } else {
    std::ifstream file(paths[0], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", paths[0].c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    input = buffer.str();
  }
  const std::string input_tag = paths.empty() ? "stdin" : paths[0];

  // Normalize to (execution, write orders) regardless of input format.
  Execution execution;
  WriteOrderLog orders;
  const bool input_binary = looks_like_binary_trace(input);
  if (input_binary) {
    BinaryParseResult parsed = decode_binary(input);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: binary decode error at byte %llu: %s\n",
                   input_tag.c_str(),
                   static_cast<unsigned long long>(parsed.byte_offset),
                   parsed.error.c_str());
      return 2;
    }
    if (parsed.ordered && target != Target::kBinary)
      std::fprintf(stderr,
                   "%s: note: dropping the ordered-stream flag (the text "
                   "format cannot represent an event interleaving)\n",
                   input_tag.c_str());
    execution = std::move(parsed.execution);
    orders = std::move(parsed.write_orders);
  } else {
    tools::TraceSource source;
    tools::split_wo_lines(input, source);
    ParseResult parsed = parse_execution(source.execution_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: parse error at line %zu: %s\n",
                   input_tag.c_str(), parsed.line, parsed.error.c_str());
      return 2;
    }
    execution = std::move(parsed.execution);
    if (!source.write_order_text.empty()) {
      WriteOrderParseResult wo = parse_write_orders(source.write_order_text);
      if (!wo.ok()) {
        std::fprintf(stderr, "%s: write-order parse error: %s\n",
                     input_tag.c_str(), wo.error.c_str());
        return 2;
      }
      orders = std::move(wo.orders);
    }
  }

  const bool to_binary = target == Target::kBinary ||
                         (target == Target::kAuto && !input_binary);
  std::string output;
  if (to_binary) {
    output = encode_binary(execution, orders.empty() ? nullptr : &orders);
  } else {
    output = serialize_execution(execution);
    output += serialize_write_orders(orders);
  }

  if (out_path.empty()) {
    std::fwrite(output.data(), 1, output.size(), stdout);
    if (std::fflush(stdout) != 0) {
      std::fprintf(stderr, "write error on stdout\n");
      return 2;
    }
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary);
  out.write(output.data(), static_cast<std::streamsize>(output.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  return 0;
}
