// vermemd: verification daemon front-end — the repo's first "serve
// traffic" binary. Feeds recorded traces through the long-lived
// VerificationService (persistent thread pool, batching, deadlines,
// result cache) and emits one JSON verdict line per trace on stdout.
//
// Usage:
//   vermemd [--mode=coherence|vscc|sc|tso|pso|coherence-only]
//           [--workers=N] [--batch=N] [--cache=N] [--deadline-ms=N]
//           [--repeat=N] [--stats] [FILE...]
//
// Each FILE is one trace in the text_io format; lines starting with
// "wo " are split out as the trace's write-order log (enabling the
// polynomial Section 5.2 coherence path). With no FILE, stdin is read;
// it may hold several traces separated by lines containing only "---".
// All traces are submitted up front and verified concurrently by the
// service; output order matches input order.
//
// --deadline-ms bounds each request's wall-clock latency (late requests
// report "unknown" with "timed_out": true). --repeat submits the input
// set N times, demonstrating the result cache. --stats appends a final
// service-stats JSON line to stderr.
//
// Exit code: 0 all verified, 1 violation found, 2 undecided/usage error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "service/service.hpp"
#include "trace/text_io.hpp"

namespace {

using namespace vermem;

int usage() {
  std::fprintf(
      stderr,
      "usage: vermemd [--mode=coherence|vscc|sc|tso|pso|coherence-only]\n"
      "               [--workers=N] [--batch=N] [--cache=N]\n"
      "               [--deadline-ms=N] [--repeat=N] [--stats] [FILE...]\n");
  return 2;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One trace's text, split into execution directives and write-order
/// ("wo ...") lines, plus a display tag.
struct TraceSource {
  std::string tag;
  std::string execution_text;
  std::string write_order_text;
};

void split_wo_lines(const std::string& text, TraceSource& out) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const bool is_wo = line.rfind("wo ", 0) == 0 || line == "wo";
    (is_wo ? out.write_order_text : out.execution_text) += line;
    (is_wo ? out.write_order_text : out.execution_text) += '\n';
  }
}

bool parse_size_arg(const std::string& arg, std::size_t prefix_len,
                    std::size_t& out) {
  try {
    out = static_cast<std::size_t>(std::stoull(arg.substr(prefix_len)));
    return true;
  } catch (...) {
    return false;
  }
}

void print_response(const std::string& tag,
                    const service::VerificationResponse& response) {
  std::printf(
      "{\"trace\":\"%s\",\"verdict\":\"%s\",\"reason\":\"%s\","
      "\"timed_out\":%s,\"cancelled\":%s,\"cache_hit\":%s,"
      "\"fingerprint\":\"%016llx\",\"ops\":%zu,\"addresses\":%zu,"
      "\"queue_us\":%.1f,\"run_us\":%.1f}\n",
      json_escape(tag).c_str(), to_string(response.verdict),
      json_escape(response.reason).c_str(),
      response.timed_out ? "true" : "false",
      response.cancelled ? "true" : "false",
      response.cache_hit ? "true" : "false",
      static_cast<unsigned long long>(response.fingerprint),
      response.num_operations, response.num_addresses, response.queue_micros,
      response.run_micros);
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "coherence";
  std::size_t workers = 0;
  std::size_t batch = 16;
  std::size_t cache = 1024;
  std::size_t deadline_ms = 0;
  std::size_t repeat = 1;
  bool print_stats = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool ok = true;
    if (arg.rfind("--mode=", 0) == 0)
      mode = arg.substr(7);
    else if (arg.rfind("--workers=", 0) == 0)
      ok = parse_size_arg(arg, 10, workers);
    else if (arg.rfind("--batch=", 0) == 0)
      ok = parse_size_arg(arg, 8, batch);
    else if (arg.rfind("--cache=", 0) == 0)
      ok = parse_size_arg(arg, 8, cache);
    else if (arg.rfind("--deadline-ms=", 0) == 0)
      ok = parse_size_arg(arg, 14, deadline_ms);
    else if (arg.rfind("--repeat=", 0) == 0)
      ok = parse_size_arg(arg, 9, repeat);
    else if (arg == "--stats")
      print_stats = true;
    else if (arg.rfind("--", 0) == 0)
      return usage();
    else
      paths.push_back(arg);
    if (!ok) return usage();
  }

  service::CheckMode check_mode = service::CheckMode::kCoherence;
  models::Model model = models::Model::kSc;
  if (mode == "coherence") {
    check_mode = service::CheckMode::kCoherence;
  } else if (mode == "vscc") {
    check_mode = service::CheckMode::kVscc;
  } else if (mode == "sc" || mode == "tso" || mode == "pso" ||
             mode == "coherence-only") {
    check_mode = service::CheckMode::kConsistency;
    model = mode == "sc"    ? models::Model::kSc
            : mode == "tso" ? models::Model::kTso
            : mode == "pso" ? models::Model::kPso
                            : models::Model::kCoherenceOnly;
  } else {
    return usage();
  }

  std::vector<TraceSource> sources;
  if (paths.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    const std::string all = buffer.str();
    // Split stdin into traces on "---" separator lines.
    TraceSource current;
    std::size_t count = 0;
    std::istringstream lines(all);
    std::string line;
    std::string chunk;
    auto flush = [&] {
      if (chunk.find_first_not_of(" \t\r\n") == std::string::npos) {
        chunk.clear();
        return;
      }
      current = {};
      current.tag = "stdin[" + std::to_string(count++) + "]";
      split_wo_lines(chunk, current);
      sources.push_back(std::move(current));
      chunk.clear();
    };
    while (std::getline(lines, line)) {
      if (line.find_first_not_of('-') == std::string::npos &&
          line.size() >= 3) {
        flush();
      } else {
        chunk += line;
        chunk += '\n';
      }
    }
    flush();
  } else {
    for (const std::string& path : paths) {
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      TraceSource source;
      source.tag = path;
      split_wo_lines(buffer.str(), source);
      sources.push_back(std::move(source));
    }
  }
  if (sources.empty()) {
    std::fprintf(stderr, "no traces to verify\n");
    return 2;
  }

  // Parse everything before spinning up the service so a malformed trace
  // is a clean exit-2, not a half-verified stream.
  std::vector<service::VerificationRequest> requests;
  for (const TraceSource& source : sources) {
    ParseResult parsed = parse_execution(source.execution_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: parse error at line %zu: %s\n",
                   source.tag.c_str(), parsed.line, parsed.error.c_str());
      return 2;
    }
    service::VerificationRequest request;
    request.execution = std::move(parsed.execution);
    if (!source.write_order_text.empty()) {
      WriteOrderParseResult orders = parse_write_orders(source.write_order_text);
      if (!orders.ok()) {
        std::fprintf(stderr, "%s: write-order parse error: %s\n",
                     source.tag.c_str(), orders.error.c_str());
        return 2;
      }
      request.write_orders.emplace(orders.orders.begin(), orders.orders.end());
    }
    request.mode = check_mode;
    request.model = model;
    if (deadline_ms != 0)
      request.deadline = std::chrono::milliseconds(deadline_ms);
    request.tag = source.tag;
    requests.push_back(std::move(request));
  }

  service::ServiceOptions options;
  options.workers = workers;
  options.max_batch = batch;
  options.cache_capacity = cache;
  service::VerificationService svc(options);

  int exit_code = 0;
  for (std::size_t round = 0; round < repeat; ++round) {
    std::vector<service::VerificationService::Ticket> tickets;
    tickets.reserve(requests.size());
    for (const service::VerificationRequest& request : requests)
      tickets.push_back(svc.submit(service::VerificationRequest(request)));
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const service::VerificationResponse response =
          tickets[i].response.get();
      print_response(requests[i].tag, response);
      if (response.verdict == vmc::Verdict::kIncoherent)
        exit_code = std::max(exit_code, 1);
      else if (response.verdict == vmc::Verdict::kUnknown)
        exit_code = std::max(exit_code, 2);
    }
  }

  if (print_stats) {
    const service::ServiceStats stats = svc.stats();
    std::fprintf(stderr,
                 "{\"submitted\":%llu,\"completed\":%llu,\"cache_hits\":%llu,"
                 "\"cache_hit_rate\":%.3f,\"timed_out\":%llu,"
                 "\"coherent\":%llu,\"incoherent\":%llu,\"unknown\":%llu,"
                 "\"p50_us\":%.1f,\"p99_us\":%.1f,\"workers\":%zu}\n",
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.cache_hits),
                 stats.cache_hit_rate(),
                 static_cast<unsigned long long>(stats.timed_out),
                 static_cast<unsigned long long>(stats.coherent),
                 static_cast<unsigned long long>(stats.incoherent),
                 static_cast<unsigned long long>(stats.unknown),
                 stats.p50_micros, stats.p99_micros, svc.num_workers());
  }
  svc.shutdown();
  return exit_code;
}
