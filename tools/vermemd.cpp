// vermemd: verification daemon front-end — the repo's first "serve
// traffic" binary. Feeds recorded traces through the long-lived
// VerificationService (persistent thread pool, batching, deadlines,
// result cache) and emits one JSON verdict line per trace on stdout.
//
// Usage:
//   vermemd [--mode=coherence|vscc|sc|tso|pso|coherence-only]
//           [--workers=N] [--batch=N] [--cache=N] [--deadline-ms=N]
//           [--repeat=N] [--binary] [--shards=N] [--analyze] [--certify]
//           [--stats] [--version] [--trace-out=FILE] [--metrics-out=FILE]
//           [FILE...]
//
// Each FILE is one trace in the text_io format; lines starting with
// "wo " are split out as the trace's write-order log (enabling the
// polynomial Section 5.2 coherence path). With no FILE, stdin is read;
// it may hold several traces separated by lines containing only "---".
// All traces are submitted up front and verified concurrently by the
// service; output order matches input order.
//
// Binary traces (docs/FORMATS.md) are auto-detected by their "VMTB"
// magic — on stdin and per FILE — and verified through the service's
// streaming ingest pipeline (sharded, bounded-memory, no materialized
// Execution) instead of the batch queue. --binary forces the binary
// interpretation (a non-binary input then fails with a decode error);
// --shards=N sets the pipeline's checker-shard count (0 = auto).
// Streamed traces support coherence mode only, and --analyze/--certify
// do not apply to them.
//
// --deadline-ms bounds each request's wall-clock latency (late requests
// report "unknown" with "timed_out": true). --repeat submits the input
// set N times, demonstrating the result cache. --analyze additionally
// runs the static trace analyzer on every request and embeds one
// "analysis" JSON object per trace (fragment classification per address
// plus lint diagnostics with rule IDs and severities). --certify embeds
// a "certs" array per trace: each element is one certificate in the
// certify text format (docs/CERTIFICATES.md), ready to be re-validated
// out of process by piping this output into vermemcert together with
// the trace files. --stats appends
// a final service-stats JSON line to stderr, including the fragment
// routing counters.
//
// Observability exporters (docs/OBSERVABILITY.md):
//   --trace-out=FILE    enable span collection and write a Chrome
//                       trace-event JSON file on exit (load in Perfetto
//                       or chrome://tracing)
//   --metrics-out=FILE  write the process metrics registry on exit:
//                       Prometheus text exposition (plus the service's
//                       own ServiceStats counters), or a JSON summary
//                       when FILE ends in .json
//
// Exit codes (see docs/SERVICE.md):
//   0  every trace verified with a definite coherent/admissible verdict
//   1  at least one trace is incoherent (a violation was found)
//   2  usage or parse error; nothing was verified
//   3  no violation, but at least one verdict is unknown (deadline,
//      cancellation, or effort budget) — CI smoke tests assert "no
//      timeouts" by requiring exit != 3

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis_json.hpp"
#include "certify/text.hpp"
#include "trace/binary_io.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "service/service.hpp"
#include "support/format.hpp"
#include "trace/text_io.hpp"
#include "trace_stream.hpp"

namespace {

using namespace vermem;

int usage() {
  std::fprintf(
      stderr,
      "usage: vermemd [--mode=coherence|vscc|sc|tso|pso|coherence-only]\n"
      "               [--workers=N] [--batch=N] [--cache=N]\n"
      "               [--deadline-ms=N] [--repeat=N] [--binary]\n"
      "               [--shards=N] [--analyze] [--certify] [--stats]\n"
      "               [--trace-out=FILE] [--metrics-out=FILE] [--version]\n"
      "               [FILE...]\n");
  return 2;
}

/// Flushes verdict lines already written before a fatal stderr message:
/// when stdout is a pipe, an abort must not silently discard them.
int fatal_exit() {
  std::fflush(stdout);
  return 2;
}

void print_response(const std::string& tag,
                    const service::VerificationResponse& response) {
  std::printf(
      "{\"trace\":\"%s\",\"verdict\":\"%s\",\"reason\":\"%s\","
      "\"timed_out\":%s,\"cancelled\":%s,\"cache_hit\":%s,"
      "\"fingerprint\":\"%016llx\",\"ops\":%zu,\"addresses\":%zu,"
      "\"queue_us\":%.1f,\"run_us\":%.1f",
      tools::json_escape(tag).c_str(), to_string(response.verdict),
      tools::json_escape(response.reason).c_str(),
      response.timed_out ? "true" : "false",
      response.cancelled ? "true" : "false",
      response.cache_hit ? "true" : "false",
      static_cast<unsigned long long>(response.fingerprint),
      response.num_operations, response.num_addresses, response.queue_micros,
      response.run_micros);
  std::printf(
      ",\"effort\":{\"states\":%llu,\"transitions\":%llu,\"prunes\":%llu,"
      "\"max_frontier\":%llu,\"arena_reserved\":%llu,"
      "\"arena_high_water\":%llu,\"arena_allocs\":%llu}",
      static_cast<unsigned long long>(response.effort.states_visited),
      static_cast<unsigned long long>(response.effort.transitions),
      static_cast<unsigned long long>(response.effort.prunes),
      static_cast<unsigned long long>(response.effort.max_frontier),
      static_cast<unsigned long long>(response.effort.arena_reserved),
      static_cast<unsigned long long>(response.effort.arena_high_water),
      static_cast<unsigned long long>(response.effort.arena_allocations));
  if (response.analyzed)
    std::printf(",\"analysis\":%s",
                tools::analysis_json(response.analysis).c_str());
  if (!response.certificates.empty()) {
    std::printf(",\"certs\":[");
    for (std::size_t i = 0; i < response.certificates.size(); ++i) {
      std::printf("%s\"%s\"", i == 0 ? "" : ",",
                  tools::json_escape(certify::dump(response.certificates[i]))
                      .c_str());
    }
    std::printf("]");
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "coherence";
  std::size_t workers = 0;
  std::size_t batch = 16;
  std::size_t cache = 1024;
  std::size_t deadline_ms = 0;
  std::size_t repeat = 1;
  std::size_t stream_shards = 0;
  bool force_binary = false;
  bool analyze = false;
  bool certify = false;
  bool print_stats = false;
  std::string trace_out;
  std::string metrics_out;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool ok = true;
    if (arg.rfind("--mode=", 0) == 0)
      mode = arg.substr(7);
    else if (arg.rfind("--workers=", 0) == 0)
      ok = tools::parse_size_arg(arg, 10, workers);
    else if (arg.rfind("--batch=", 0) == 0)
      ok = tools::parse_size_arg(arg, 8, batch);
    else if (arg.rfind("--cache=", 0) == 0)
      ok = tools::parse_size_arg(arg, 8, cache);
    else if (arg.rfind("--deadline-ms=", 0) == 0)
      ok = tools::parse_size_arg(arg, 14, deadline_ms);
    else if (arg.rfind("--repeat=", 0) == 0)
      ok = tools::parse_size_arg(arg, 9, repeat);
    else if (arg.rfind("--shards=", 0) == 0)
      ok = tools::parse_size_arg(arg, 9, stream_shards);
    else if (arg == "--binary")
      force_binary = true;
    else if (arg.rfind("--trace-out=", 0) == 0)
      trace_out = arg.substr(12);
    else if (arg.rfind("--metrics-out=", 0) == 0)
      metrics_out = arg.substr(14);
    else if (arg == "--analyze")
      analyze = true;
    else if (arg == "--certify")
      certify = true;
    else if (arg == "--stats")
      print_stats = true;
    else if (arg == "--version") {
      std::printf("vermemd %.*s\n", static_cast<int>(kVermemVersion.size()),
                  kVermemVersion.data());
      return 0;
    } else if (arg.rfind("--", 0) == 0)
      return usage();
    else
      paths.push_back(arg);
    if (!ok) return usage();
  }
  if (!trace_out.empty()) obs::set_tracing_enabled(true);
  if (!metrics_out.empty()) obs::set_enabled(true);

  service::CheckMode check_mode = service::CheckMode::kCoherence;
  models::Model model = models::Model::kSc;
  if (mode == "coherence") {
    check_mode = service::CheckMode::kCoherence;
  } else if (mode == "vscc") {
    check_mode = service::CheckMode::kVscc;
  } else if (mode == "sc" || mode == "tso" || mode == "pso" ||
             mode == "coherence-only") {
    check_mode = service::CheckMode::kConsistency;
    model = mode == "sc"    ? models::Model::kSc
            : mode == "tso" ? models::Model::kTso
            : mode == "pso" ? models::Model::kPso
                            : models::Model::kCoherenceOnly;
  } else {
    return usage();
  }

  // Classify each input as text (batch queue) or binary (streaming
  // pipeline) by peeking at the "VMTB" magic, preserving input order.
  struct InputItem {
    std::string tag;
    bool binary = false;
    std::string bytes;              // raw binary trace when binary
    std::size_t request_index = 0;  // into requests[] when text
  };
  std::vector<InputItem> items;
  std::vector<tools::TraceSource> sources;
  auto classify = [&](std::string tag, std::string data) {
    if (force_binary || looks_like_binary_trace(data)) {
      items.push_back({std::move(tag), true, std::move(data), 0});
      return;
    }
    tools::TraceSource source;
    source.tag = std::move(tag);
    tools::split_wo_lines(data, source);
    sources.push_back(std::move(source));
    items.push_back({sources.back().tag, false, {}, sources.size() - 1});
  };
  if (paths.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    std::string all = buffer.str();
    if (force_binary || looks_like_binary_trace(all)) {
      items.push_back({"stdin", true, std::move(all), 0});
    } else {
      std::vector<tools::TraceSource> split;
      tools::split_concatenated_sources(all, "stdin", split);
      for (tools::TraceSource& source : split) {
        sources.push_back(std::move(source));
        items.push_back({sources.back().tag, false, {}, sources.size() - 1});
      }
    }
  } else {
    for (const std::string& path : paths) {
      std::ifstream file(path, std::ios::binary);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      classify(path, buffer.str());
    }
  }
  if (items.empty()) {
    std::fprintf(stderr, "no traces to verify\n");
    return 2;
  }
  bool any_binary = false;
  for (const InputItem& item : items) any_binary |= item.binary;
  if (any_binary && check_mode != service::CheckMode::kCoherence) {
    std::fprintf(stderr,
                 "binary traces stream through the coherence checker only "
                 "(--mode=coherence)\n");
    return 2;
  }

  // Parse everything before spinning up the service so a malformed trace
  // is a clean exit-2, not a half-verified stream.
  std::vector<service::VerificationRequest> requests;
  for (const tools::TraceSource& source : sources) {
    ParseResult parsed = parse_execution(source.execution_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: parse error at line %zu: %s\n",
                   source.tag.c_str(), parsed.line, parsed.error.c_str());
      return fatal_exit();
    }
    service::VerificationRequest request;
    request.execution = std::move(parsed.execution);
    if (!source.write_order_text.empty()) {
      WriteOrderParseResult orders = parse_write_orders(source.write_order_text);
      if (!orders.ok()) {
        std::fprintf(stderr, "%s: write-order parse error: %s\n",
                     source.tag.c_str(), orders.error.c_str());
        return fatal_exit();
      }
      request.write_orders.emplace(orders.orders.begin(), orders.orders.end());
    }
    request.mode = check_mode;
    request.model = model;
    if (deadline_ms != 0)
      request.deadline = std::chrono::milliseconds(deadline_ms);
    request.analyze = analyze;
    request.certify = certify;
    request.tag = source.tag;
    requests.push_back(std::move(request));
  }

  service::ServiceOptions options;
  options.workers = workers;
  options.max_batch = batch;
  options.cache_capacity = cache;
  service::VerificationService svc(options);

  bool any_incoherent = false;
  bool any_unknown = false;
  for (std::size_t round = 0; round < repeat; ++round) {
    // Text traces go through the batch queue up front (verified
    // concurrently); binary traces stream synchronously on this thread,
    // in input order, through the pooled ingest pipeline.
    std::vector<service::VerificationService::Ticket> tickets;
    tickets.reserve(requests.size());
    for (const service::VerificationRequest& request : requests)
      tickets.push_back(svc.submit(service::VerificationRequest(request)));
    for (const InputItem& item : items) {
      service::VerificationResponse response;
      if (item.binary) {
        service::StreamRequest stream_request;
        stream_request.options.shards = stream_shards;
        if (deadline_ms != 0)
          stream_request.deadline = std::chrono::milliseconds(deadline_ms);
        stream_request.tag = item.tag;
        BinaryTraceReader reader{std::string_view(item.bytes)};
        response = svc.verify_stream(reader, std::move(stream_request));
      } else {
        response = tickets[item.request_index].response.get();
      }
      print_response(item.tag, response);
      if (response.verdict == vmc::Verdict::kIncoherent)
        any_incoherent = true;
      else if (response.verdict == vmc::Verdict::kUnknown)
        any_unknown = true;
    }
  }

  if (print_stats) {
    const service::ServiceStats stats = svc.stats();
    std::string fragments;
    for (std::size_t f = 0; f < analysis::kNumFragments; ++f) {
      if (stats.fragments[f] == 0) continue;
      if (!fragments.empty()) fragments += ",";
      fragments += "\"";
      fragments += to_string(static_cast<analysis::Fragment>(f));
      fragments += "\":" + std::to_string(stats.fragments[f]);
    }
    std::fprintf(stderr,
                 "{\"submitted\":%llu,\"completed\":%llu,\"cache_hits\":%llu,"
                 "\"cache_hit_rate\":%.3f,\"timed_out\":%llu,"
                 "\"coherent\":%llu,\"incoherent\":%llu,\"unknown\":%llu,"
                 "\"p50_us\":%.1f,\"p99_us\":%.1f,\"workers\":%zu,"
                 "\"poly_routed\":%llu,\"exact_routed\":%llu,"
                 "\"saturate_ran\":%llu,\"saturate_decided\":%llu,"
                 "\"saturate_cycles\":%llu,\"saturate_forced\":%llu,"
                 "\"saturate_edges\":%llu,"
                 "\"lint_warnings\":%llu,"
                 "\"streamed\":%llu,\"stream_events\":%llu,"
                 "\"stream_shed\":%llu,\"fragments\":{%s}}\n",
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.cache_hits),
                 stats.cache_hit_rate(),
                 static_cast<unsigned long long>(stats.timed_out),
                 static_cast<unsigned long long>(stats.coherent),
                 static_cast<unsigned long long>(stats.incoherent),
                 static_cast<unsigned long long>(stats.unknown),
                 stats.p50_micros, stats.p99_micros, svc.num_workers(),
                 static_cast<unsigned long long>(stats.poly_routed),
                 static_cast<unsigned long long>(stats.exact_routed),
                 static_cast<unsigned long long>(stats.saturate_ran),
                 static_cast<unsigned long long>(stats.saturate_decided),
                 static_cast<unsigned long long>(stats.saturate_cycles),
                 static_cast<unsigned long long>(stats.saturate_forced),
                 static_cast<unsigned long long>(stats.saturate_edges),
                 static_cast<unsigned long long>(stats.lint_warnings),
                 static_cast<unsigned long long>(stats.streamed),
                 static_cast<unsigned long long>(stats.stream_events),
                 static_cast<unsigned long long>(stats.stream_shed),
                 fragments.c_str());
  }
  if (!metrics_out.empty()) {
    // Snapshot before shutdown so queue/in-flight gauges reflect the
    // serving state; the registry itself is process-global.
    const service::ServiceStats stats = svc.stats();
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return fatal_exit();
    }
    const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
    const bool as_json = metrics_out.size() >= 5 &&
                         metrics_out.compare(metrics_out.size() - 5, 5,
                                             ".json") == 0;
    if (as_json)
      out << snapshot.to_json() << "\n";
    else
      out << snapshot.to_prometheus() << stats.to_prometheus();
  }
  svc.shutdown();
  if (!trace_out.empty()) {
    // After shutdown: worker and dispatcher spans are all closed by now.
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return fatal_exit();
    }
    obs::write_chrome_trace(out);
  }
  if (any_incoherent) return 1;
  if (any_unknown) return 3;
  return 0;
}
