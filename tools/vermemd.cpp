// vermemd: verification daemon front-end — the repo's first "serve
// traffic" binary. Feeds recorded traces through the long-lived
// VerificationService (persistent thread pool, batching, deadlines,
// result cache) and emits one JSON verdict line per trace on stdout.
//
// Usage:
//   vermemd [--mode=coherence|vscc|sc|tso|pso|coherence-only]
//           [--workers=N] [--batch=N] [--cache=N] [--deadline-ms=N]
//           [--repeat=N] [--binary] [--shards=N] [--analyze] [--certify]
//           [--stats] [--version] [--trace-out=FILE] [--metrics-out=FILE]
//           [FILE...]
//
// Each FILE is one trace in the text_io format; lines starting with
// "wo " are split out as the trace's write-order log (enabling the
// polynomial Section 5.2 coherence path). With no FILE, stdin is read;
// it may hold several traces separated by lines containing only "---".
// All traces are submitted up front and verified concurrently by the
// service; output order matches input order.
//
// Binary traces (docs/FORMATS.md) are auto-detected by their "VMTB"
// magic — on stdin and per FILE — and verified through the service's
// streaming ingest pipeline (sharded, bounded-memory, no materialized
// Execution) instead of the batch queue. --binary forces the binary
// interpretation (a non-binary input then fails with a decode error);
// --shards=N sets the pipeline's checker-shard count (0 = auto).
// Streamed traces support coherence mode only, and --analyze/--certify
// do not apply to them.
//
// --solver selects the exact-tier engine policy for text traces:
// "portfolio" races the frontier search, CDCL, and bounded-k per
// hard address (first definite verdict wins, losers are cancelled);
// "cdcl"/"dpll" force one engine. Default "auto" keeps the
// single-engine routed cascade. The per-trace JSON gains a
// "portfolio" object whenever at least one race ran, and kVscc
// responses report "warm_sweep"/"suffix_extension" when served from
// the service's retained incremental solver.
//
// --deadline-ms bounds each request's wall-clock latency (late requests
// report "unknown" with "timed_out": true). --repeat submits the input
// set N times, demonstrating the result cache. --analyze additionally
// runs the static trace analyzer on every request and embeds one
// "analysis" JSON object per trace (fragment classification per address
// plus lint diagnostics with rule IDs and severities). --certify embeds
// a "certs" array per trace: each element is one certificate in the
// certify text format (docs/CERTIFICATES.md), ready to be re-validated
// out of process by piping this output into vermemcert together with
// the trace files. --stats appends
// a final service-stats JSON line to stderr, including the fragment
// routing counters.
//
// Observability exporters (docs/OBSERVABILITY.md):
//   --trace-out=FILE    enable span collection and write a Chrome
//                       trace-event JSON file on exit (load in Perfetto
//                       or chrome://tracing)
//   --metrics-out=FILE  write the process metrics registry on exit:
//                       Prometheus text exposition (plus the service's
//                       own ServiceStats counters), or a JSON summary
//                       when FILE ends in .json
//   --log-out=FILE      write the structured JSONL log ring on exit;
//                       raises the level to info when VERMEM_LOG left
//                       it off
//   --flight-out=FILE   enable the flight recorder, write retained
//                       slow/shed/wrong-request records as JSON on
//                       exit, and install the SIGSEGV/SIGABRT black-box
//                       dump (written to FILE.crash)
//   --flight-slow-us=N  flight-recorder slow-request threshold in
//                       microseconds (default 50000)
//
// Every exporter file is written on *every* exit path, including fatal
// errors after argument parsing — a crash investigation must not lose
// the flight record because the process also hit a parse error.
//
// Exit codes (see docs/SERVICE.md):
//   0  every trace verified with a definite coherent/admissible verdict
//   1  at least one trace is incoherent (a violation was found)
//   2  usage or parse error; nothing was verified
//   3  no violation, but at least one verdict is unknown (deadline,
//      cancellation, or effort budget) — CI smoke tests assert "no
//      timeouts" by requiring exit != 3

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis_json.hpp"
#include "certify/text.hpp"
#include "trace/binary_io.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "service/service.hpp"
#include "support/format.hpp"
#include "trace/text_io.hpp"
#include "trace_stream.hpp"

namespace {

using namespace vermem;

int usage() {
  std::fprintf(
      stderr,
      "usage: vermemd [--mode=coherence|vscc|sc|tso|pso|coherence-only]\n"
      "               [--solver=auto|portfolio|cdcl|dpll]\n"
      "               [--workers=N] [--batch=N] [--cache=N]\n"
      "               [--deadline-ms=N] [--repeat=N] [--binary]\n"
      "               [--shards=N] [--analyze] [--certify] [--stats]\n"
      "               [--trace-out=FILE] [--metrics-out=FILE]\n"
      "               [--log-out=FILE] [--flight-out=FILE]\n"
      "               [--flight-slow-us=N] [--version] [FILE...]\n");
  return 2;
}

/// The one exit path every return after argument parsing goes through:
/// flushes verdict lines already on stdout, then writes every requested
/// exporter file — metrics (before service shutdown, so queue gauges
/// reflect the serving state), trace, structured log, flight records —
/// best-effort, so a fatal error after some exporters were requested
/// still leaves the diagnostics that explain it on disk.
struct Exporters {
  std::string trace_out;
  std::string metrics_out;
  std::string log_out;
  std::string flight_out;
  service::VerificationService* svc = nullptr;

  int finish(int code) {
    std::fflush(stdout);
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
        if (code == 0) code = 2;
      } else {
        const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
        const bool as_json =
            metrics_out.size() >= 5 &&
            metrics_out.compare(metrics_out.size() - 5, 5, ".json") == 0;
        if (as_json)
          out << snapshot.to_json() << "\n";
        else if (svc != nullptr)
          out << snapshot.to_prometheus() << svc->stats().to_prometheus();
        else
          out << snapshot.to_prometheus();
      }
    }
    if (svc != nullptr) svc->shutdown();
    if (!trace_out.empty()) {
      // After shutdown: worker and dispatcher spans are all closed.
      std::ofstream out(trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
        if (code == 0) code = 2;
      } else {
        obs::write_chrome_trace(out);
      }
    }
    if (!log_out.empty()) {
      std::ofstream out(log_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", log_out.c_str());
        if (code == 0) code = 2;
      } else {
        obs::write_log_jsonl(out);
      }
    }
    if (!flight_out.empty()) {
      std::ofstream out(flight_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", flight_out.c_str());
        if (code == 0) code = 2;
      } else {
        obs::write_flight_json(out);
      }
    }
    return code;
  }
};

void print_response(const std::string& tag,
                    const service::VerificationResponse& response) {
  std::printf(
      "{\"trace\":\"%s\",\"verdict\":\"%s\",\"reason\":\"%s\","
      "\"timed_out\":%s,\"cancelled\":%s,\"cache_hit\":%s,"
      "\"fingerprint\":\"%016llx\",\"ops\":%zu,\"addresses\":%zu,"
      "\"queue_us\":%.1f,\"run_us\":%.1f,\"flight_id\":%llu",
      tools::json_escape(tag).c_str(), to_string(response.verdict),
      tools::json_escape(response.reason).c_str(),
      response.timed_out ? "true" : "false",
      response.cancelled ? "true" : "false",
      response.cache_hit ? "true" : "false",
      static_cast<unsigned long long>(response.fingerprint),
      response.num_operations, response.num_addresses, response.queue_micros,
      response.run_micros,
      static_cast<unsigned long long>(response.flight_id));
  std::printf(
      ",\"effort\":{\"states\":%llu,\"transitions\":%llu,\"prunes\":%llu,"
      "\"max_frontier\":%llu,\"arena_reserved\":%llu,"
      "\"arena_high_water\":%llu,\"arena_allocs\":%llu}",
      static_cast<unsigned long long>(response.effort.states_visited),
      static_cast<unsigned long long>(response.effort.transitions),
      static_cast<unsigned long long>(response.effort.prunes),
      static_cast<unsigned long long>(response.effort.max_frontier),
      static_cast<unsigned long long>(response.effort.arena_reserved),
      static_cast<unsigned long long>(response.effort.arena_high_water),
      static_cast<unsigned long long>(response.effort.arena_allocations));
  if (response.portfolio_races > 0) {
    std::string wins;
    for (std::size_t e = 0; e < analysis::kNumEngines; ++e) {
      if (response.engine_wins[e] == 0) continue;
      if (!wins.empty()) wins += ",";
      wins += "\"";
      wins += to_string(static_cast<analysis::Engine>(e));
      wins += "\":" + std::to_string(response.engine_wins[e]);
    }
    std::printf(
        ",\"portfolio\":{\"races\":%llu,\"wins\":{%s},"
        "\"wasted_states\":%llu,\"wasted_transitions\":%llu}",
        static_cast<unsigned long long>(response.portfolio_races), wins.c_str(),
        static_cast<unsigned long long>(
            response.wasted_effort.states_visited),
        static_cast<unsigned long long>(response.wasted_effort.transitions));
  }
  if (response.warm_sweep)
    std::printf(",\"warm_sweep\":true,\"suffix_extension\":%s",
                response.suffix_extension ? "true" : "false");
  if (response.analyzed)
    std::printf(",\"analysis\":%s",
                tools::analysis_json(response.analysis).c_str());
  if (!response.certificates.empty()) {
    std::printf(",\"certs\":[");
    for (std::size_t i = 0; i < response.certificates.size(); ++i) {
      std::printf("%s\"%s\"", i == 0 ? "" : ",",
                  tools::json_escape(certify::dump(response.certificates[i]))
                      .c_str());
    }
    std::printf("]");
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "coherence";
  std::string solver = "auto";
  std::size_t workers = 0;
  std::size_t batch = 16;
  std::size_t cache = 1024;
  std::size_t deadline_ms = 0;
  std::size_t repeat = 1;
  std::size_t stream_shards = 0;
  std::size_t flight_slow_us = 0;
  bool force_binary = false;
  bool analyze = false;
  bool certify = false;
  bool print_stats = false;
  Exporters exporters;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool ok = true;
    if (arg.rfind("--mode=", 0) == 0)
      mode = arg.substr(7);
    else if (arg.rfind("--solver=", 0) == 0)
      solver = arg.substr(9);
    else if (arg.rfind("--workers=", 0) == 0)
      ok = tools::parse_size_arg(arg, 10, workers);
    else if (arg.rfind("--batch=", 0) == 0)
      ok = tools::parse_size_arg(arg, 8, batch);
    else if (arg.rfind("--cache=", 0) == 0)
      ok = tools::parse_size_arg(arg, 8, cache);
    else if (arg.rfind("--deadline-ms=", 0) == 0)
      ok = tools::parse_size_arg(arg, 14, deadline_ms);
    else if (arg.rfind("--repeat=", 0) == 0)
      ok = tools::parse_size_arg(arg, 9, repeat);
    else if (arg.rfind("--shards=", 0) == 0)
      ok = tools::parse_size_arg(arg, 9, stream_shards);
    else if (arg == "--binary")
      force_binary = true;
    else if (arg.rfind("--trace-out=", 0) == 0)
      exporters.trace_out = arg.substr(12);
    else if (arg.rfind("--metrics-out=", 0) == 0)
      exporters.metrics_out = arg.substr(14);
    else if (arg.rfind("--log-out=", 0) == 0)
      exporters.log_out = arg.substr(10);
    else if (arg.rfind("--flight-out=", 0) == 0)
      exporters.flight_out = arg.substr(13);
    else if (arg.rfind("--flight-slow-us=", 0) == 0)
      ok = tools::parse_size_arg(arg, 17, flight_slow_us);
    else if (arg == "--analyze")
      analyze = true;
    else if (arg == "--certify")
      certify = true;
    else if (arg == "--stats")
      print_stats = true;
    else if (arg == "--version") {
      std::printf("vermemd %.*s\n", static_cast<int>(kVermemVersion.size()),
                  kVermemVersion.data());
      return 0;
    } else if (arg.rfind("--", 0) == 0)
      return usage();
    else
      paths.push_back(arg);
    if (!ok) return usage();
  }
  if (!exporters.trace_out.empty()) obs::set_tracing_enabled(true);
  if (!exporters.metrics_out.empty()) obs::set_enabled(true);
  // --log-out implies info-level logging unless VERMEM_LOG explicitly
  // chose a level (including off).
  if (!exporters.log_out.empty() && std::getenv("VERMEM_LOG") == nullptr)
    obs::set_log_level(obs::LogLevel::kInfo);
  if (!exporters.flight_out.empty()) {
    obs::set_flight_enabled(true);
    // Black box: a crash writes the last ring events + counters here.
    static const std::string crash_path = exporters.flight_out + ".crash";
    obs::install_crash_handler(crash_path.c_str());
  }
  if (flight_slow_us != 0) {
    obs::FlightPolicy policy = obs::flight_policy();
    policy.latency_threshold_nanos =
        static_cast<std::uint64_t>(flight_slow_us) * 1000;
    obs::set_flight_policy(policy);
  }

  service::CheckMode check_mode = service::CheckMode::kCoherence;
  models::Model model = models::Model::kSc;
  if (mode == "coherence") {
    check_mode = service::CheckMode::kCoherence;
  } else if (mode == "vscc") {
    check_mode = service::CheckMode::kVscc;
  } else if (mode == "sc" || mode == "tso" || mode == "pso" ||
             mode == "coherence-only") {
    check_mode = service::CheckMode::kConsistency;
    model = mode == "sc"    ? models::Model::kSc
            : mode == "tso" ? models::Model::kTso
            : mode == "pso" ? models::Model::kPso
                            : models::Model::kCoherenceOnly;
  } else {
    return usage();
  }

  service::SolverChoice solver_choice = service::SolverChoice::kAuto;
  if (solver == "auto") {
    solver_choice = service::SolverChoice::kAuto;
  } else if (solver == "portfolio") {
    solver_choice = service::SolverChoice::kPortfolio;
  } else if (solver == "cdcl") {
    solver_choice = service::SolverChoice::kCdcl;
  } else if (solver == "dpll") {
    solver_choice = service::SolverChoice::kDpll;
  } else {
    return usage();
  }

  // Classify each input as text (batch queue) or binary (streaming
  // pipeline) by peeking at the "VMTB" magic, preserving input order.
  struct InputItem {
    std::string tag;
    bool binary = false;
    std::string bytes;              // raw binary trace when binary
    std::size_t request_index = 0;  // into requests[] when text
  };
  std::vector<InputItem> items;
  std::vector<tools::TraceSource> sources;
  auto classify = [&](std::string tag, std::string data) {
    if (force_binary || looks_like_binary_trace(data)) {
      items.push_back({std::move(tag), true, std::move(data), 0});
      return;
    }
    tools::TraceSource source;
    source.tag = std::move(tag);
    tools::split_wo_lines(data, source);
    sources.push_back(std::move(source));
    items.push_back({sources.back().tag, false, {}, sources.size() - 1});
  };
  if (paths.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    std::string all = buffer.str();
    if (force_binary || looks_like_binary_trace(all)) {
      items.push_back({"stdin", true, std::move(all), 0});
    } else {
      std::vector<tools::TraceSource> split;
      tools::split_concatenated_sources(all, "stdin", split);
      for (tools::TraceSource& source : split) {
        sources.push_back(std::move(source));
        items.push_back({sources.back().tag, false, {}, sources.size() - 1});
      }
    }
  } else {
    for (const std::string& path : paths) {
      std::ifstream file(path, std::ios::binary);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return exporters.finish(2);
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      classify(path, buffer.str());
    }
  }
  if (items.empty()) {
    std::fprintf(stderr, "no traces to verify\n");
    return exporters.finish(2);
  }
  bool any_binary = false;
  for (const InputItem& item : items) any_binary |= item.binary;
  if (any_binary && check_mode != service::CheckMode::kCoherence) {
    std::fprintf(stderr,
                 "binary traces stream through the coherence checker only "
                 "(--mode=coherence)\n");
    return exporters.finish(2);
  }

  // Parse everything before spinning up the service so a malformed trace
  // is a clean exit-2, not a half-verified stream.
  std::vector<service::VerificationRequest> requests;
  for (const tools::TraceSource& source : sources) {
    ParseResult parsed = parse_execution(source.execution_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: parse error at line %zu: %s\n",
                   source.tag.c_str(), parsed.line, parsed.error.c_str());
      return exporters.finish(2);
    }
    service::VerificationRequest request;
    request.execution = std::move(parsed.execution);
    if (!source.write_order_text.empty()) {
      WriteOrderParseResult orders = parse_write_orders(source.write_order_text);
      if (!orders.ok()) {
        std::fprintf(stderr, "%s: write-order parse error: %s\n",
                     source.tag.c_str(), orders.error.c_str());
        return exporters.finish(2);
      }
      request.write_orders.emplace(orders.orders.begin(), orders.orders.end());
    }
    request.mode = check_mode;
    request.model = model;
    request.solver = solver_choice;
    if (deadline_ms != 0)
      request.deadline = std::chrono::milliseconds(deadline_ms);
    request.analyze = analyze;
    request.certify = certify;
    request.tag = source.tag;
    requests.push_back(std::move(request));
  }

  service::ServiceOptions options;
  options.workers = workers;
  options.max_batch = batch;
  options.cache_capacity = cache;
  service::VerificationService svc(options);
  exporters.svc = &svc;
  {
    static const obs::LogSite start_site = obs::log_site("vermemd.start");
    if (start_site.should(obs::LogLevel::kInfo))
      obs::LogLine(start_site, obs::LogLevel::kInfo, "service started")
          .field("workers", svc.num_workers())
          .field("traces", items.size())
          .field("repeat", repeat)
          .field("mode", std::string_view(mode));
  }

  bool any_incoherent = false;
  bool any_unknown = false;
  for (std::size_t round = 0; round < repeat; ++round) {
    // Text traces go through the batch queue up front (verified
    // concurrently); binary traces stream synchronously on this thread,
    // in input order, through the pooled ingest pipeline.
    std::vector<service::VerificationService::Ticket> tickets;
    tickets.reserve(requests.size());
    for (const service::VerificationRequest& request : requests)
      tickets.push_back(svc.submit(service::VerificationRequest(request)));
    for (const InputItem& item : items) {
      service::VerificationResponse response;
      if (item.binary) {
        service::StreamRequest stream_request;
        stream_request.options.shards = stream_shards;
        if (deadline_ms != 0)
          stream_request.deadline = std::chrono::milliseconds(deadline_ms);
        stream_request.tag = item.tag;
        BinaryTraceReader reader{std::string_view(item.bytes)};
        response = svc.verify_stream(reader, std::move(stream_request));
      } else {
        response = tickets[item.request_index].response.get();
      }
      print_response(item.tag, response);
      if (response.verdict == vmc::Verdict::kIncoherent)
        any_incoherent = true;
      else if (response.verdict == vmc::Verdict::kUnknown)
        any_unknown = true;
    }
  }

  if (print_stats) {
    const service::ServiceStats stats = svc.stats();
    std::string fragments;
    for (std::size_t f = 0; f < analysis::kNumFragments; ++f) {
      if (stats.fragments[f] == 0) continue;
      if (!fragments.empty()) fragments += ",";
      fragments += "\"";
      fragments += to_string(static_cast<analysis::Fragment>(f));
      fragments += "\":" + std::to_string(stats.fragments[f]);
    }
    std::string wins;
    for (std::size_t e = 0; e < analysis::kNumEngines; ++e) {
      if (stats.engine_wins[e] == 0) continue;
      if (!wins.empty()) wins += ",";
      wins += "\"";
      wins += to_string(static_cast<analysis::Engine>(e));
      wins += "\":" + std::to_string(stats.engine_wins[e]);
    }
    std::fprintf(stderr,
                 "{\"submitted\":%llu,\"completed\":%llu,\"cache_hits\":%llu,"
                 "\"cache_hit_rate\":%.3f,\"timed_out\":%llu,"
                 "\"coherent\":%llu,\"incoherent\":%llu,\"unknown\":%llu,"
                 "\"p50_us\":%.1f,\"p99_us\":%.1f,\"workers\":%zu,"
                 "\"poly_routed\":%llu,\"exact_routed\":%llu,"
                 "\"saturate_ran\":%llu,\"saturate_decided\":%llu,"
                 "\"saturate_cycles\":%llu,\"saturate_forced\":%llu,"
                 "\"saturate_edges\":%llu,"
                 "\"portfolio_races\":%llu,\"engine_wins\":{%s},"
                 "\"wasted_states\":%llu,\"wasted_transitions\":%llu,"
                 "\"vscc_sweeps\":%llu,\"vscc_sweep_extended\":%llu,"
                 "\"vscc_sweep_reused\":%llu,"
                 "\"lint_warnings\":%llu,"
                 "\"streamed\":%llu,\"stream_events\":%llu,"
                 "\"stream_shed\":%llu,\"fragments\":{%s}}\n",
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.cache_hits),
                 stats.cache_hit_rate(),
                 static_cast<unsigned long long>(stats.timed_out),
                 static_cast<unsigned long long>(stats.coherent),
                 static_cast<unsigned long long>(stats.incoherent),
                 static_cast<unsigned long long>(stats.unknown),
                 stats.p50_micros, stats.p99_micros, svc.num_workers(),
                 static_cast<unsigned long long>(stats.poly_routed),
                 static_cast<unsigned long long>(stats.exact_routed),
                 static_cast<unsigned long long>(stats.saturate_ran),
                 static_cast<unsigned long long>(stats.saturate_decided),
                 static_cast<unsigned long long>(stats.saturate_cycles),
                 static_cast<unsigned long long>(stats.saturate_forced),
                 static_cast<unsigned long long>(stats.saturate_edges),
                 static_cast<unsigned long long>(stats.portfolio_races),
                 wins.c_str(),
                 static_cast<unsigned long long>(
                     stats.wasted_effort.states_visited),
                 static_cast<unsigned long long>(
                     stats.wasted_effort.transitions),
                 static_cast<unsigned long long>(stats.vscc_sweeps),
                 static_cast<unsigned long long>(stats.vscc_sweep_extended),
                 static_cast<unsigned long long>(stats.vscc_sweep_reused),
                 static_cast<unsigned long long>(stats.lint_warnings),
                 static_cast<unsigned long long>(stats.streamed),
                 static_cast<unsigned long long>(stats.stream_events),
                 static_cast<unsigned long long>(stats.stream_shed),
                 fragments.c_str());
    // Companion SLO line: per-kind rolling-window accounting plus the
    // flight-recorder residency, one JSON object to stderr.
    std::string slo;
    for (std::size_t k = 0; k < obs::kNumRequestKinds; ++k) {
      const obs::KindSlo& kind = stats.slo.kinds[k];
      if (kind.total == 0) continue;
      if (!slo.empty()) slo += ",";
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "\"%s\":{\"requests\":%llu,\"errors\":%llu,"
                    "\"breaches\":%llu,\"p99_us\":%.1f,"
                    "\"budget_remaining\":%.4f}",
                    obs::to_string(static_cast<obs::RequestKind>(k)),
                    static_cast<unsigned long long>(kind.total),
                    static_cast<unsigned long long>(kind.errors),
                    static_cast<unsigned long long>(kind.breaches),
                    kind.p99_nanos / 1e3, kind.error_budget_remaining);
      slo += buf;
    }
    std::fprintf(stderr,
                 "{\"slo\":{%s},\"flight_retained\":%llu,"
                 "\"flight_retained_total\":%llu}\n",
                 slo.c_str(),
                 static_cast<unsigned long long>(stats.flight_retained),
                 static_cast<unsigned long long>(stats.flight_retained_total));
  }
  return exporters.finish(any_incoherent ? 1 : any_unknown ? 3 : 0);
}
