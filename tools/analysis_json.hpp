#pragma once
// JSON rendering of an AnalysisReport, shared by `vermemd --analyze`
// and the standalone vermemlint CLI so both emit the same object shape:
//   {"warnings":N,"infos":N,
//    "fragments":[{"addr":A,"fragment":"write-once","bound":"O(n)",
//                  "saturation":{"status":"partial","edges":N,
//                                "branch_points":N}}...],
// (the "saturation" member appears only on addresses where the
// coherence-order saturation pass ran),
//    "diagnostics":[{"rule":"W001","name":"duplicate-value-write",
//                    "severity":"warning","addr":A,"op":"P0#2",
//                    "message":"..."}...]}

#include <string>

#include "analysis/analyzer.hpp"
#include "trace_stream.hpp"

namespace vermem::tools {

inline std::string analysis_json(const analysis::AnalysisReport& report) {
  std::string out = "{\"warnings\":" + std::to_string(report.warning_count) +
                    ",\"infos\":" + std::to_string(report.info_count) +
                    ",\"fragments\":[";
  bool first = true;
  for (const analysis::AddressAnalysis& address : report.addresses) {
    if (!first) out += ",";
    first = false;
    out += "{\"addr\":" + std::to_string(address.profile.addr) +
           ",\"fragment\":\"" + to_string(address.profile.fragment) +
           "\",\"bound\":\"" + complexity_bound(address.profile.fragment) +
           "\"";
    if (address.saturation) {
      out += ",\"saturation\":{\"status\":\"";
      out += to_string(address.saturation->status);
      out += "\",\"edges\":" +
             std::to_string(address.saturation->edges.size()) +
             ",\"branch_points\":" +
             std::to_string(address.saturation->branch_points) + "}";
    }
    out += "}";
  }
  out += "],\"diagnostics\":[";
  first = true;
  for (const analysis::AddressAnalysis& address : report.addresses) {
    for (const analysis::Diagnostic& diagnostic : address.diagnostics) {
      if (!first) out += ",";
      first = false;
      out += "{\"rule\":\"";
      out += rule_code(diagnostic.rule);
      out += "\",\"name\":\"";
      out += rule_name(diagnostic.rule);
      out += "\",\"severity\":\"";
      out += to_string(diagnostic.severity);
      out += "\",\"addr\":" + std::to_string(diagnostic.addr);
      if (diagnostic.location) {
        out += ",\"op\":\"P" + std::to_string(diagnostic.location->process) +
               "#" + std::to_string(diagnostic.location->index) + "\"";
      }
      out += ",\"message\":\"" + json_escape(diagnostic.message) + "\"}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace vermem::tools
