#!/usr/bin/env python3
"""Schema check for vermemd's structured diagnostics outputs.

Validates (normative field tables in docs/OBSERVABILITY.md):
  --log FILE     JSONL log from --log-out: one JSON object per line with
                 ts_ns/level/site/tid/msg/suppressed/fields, levels in
                 {warn,info,debug}, fields an object of numbers/strings
  --flight FILE  flight-recorder dump from --flight-out: policy object,
                 retained_total, records[] with identity/trigger/effort/
                 bounded events[] and spans[]; every span's parent must
                 resolve within its own record (0 = root), so each
                 retained span tree is self-contained
  --crash FILE   black-box crash dump (FILE.crash from the signal
                 handler): crash:true, the signal number, ring events,
                 and a counters object

Options: --min-records N (flight: require at least N retained records),
--min-lines N (log: require at least N events).
Exit 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

LOG_LEVELS = {'warn', 'info', 'debug'}
EVENT_KINDS = {
    'request_begin', 'request_end', 'tier_enter', 'tier_verdict', 'shed',
    'cancelled', 'deadline', 'solver_restart', 'arena_high_water',
}
FLIGHT_TRIGGERS = {'slow', 'unknown', 'incoherent', 'shed', 'cancelled',
                   'deadline'}
POLICY_KEYS = {'latency_threshold_nanos', 'capture_unknown',
               'capture_incoherent', 'capture_shed', 'capture_cancelled'}
EFFORT_KEYS = {'states', 'transitions', 'max_frontier', 'prunes',
               'oracle_prunes', 'sat_decisions', 'sat_propagations',
               'sat_backtracks', 'sat_restarts', 'arena_reserved',
               'arena_high_water', 'arena_allocations', 'saturate_ran',
               'saturate_decided', 'saturate_edges', 'portfolio_races',
               'portfolio_wasted_states', 'portfolio_wasted_transitions'}


def fail(where, message):
    print(f'{where}: {message}')
    return 1


def expect(obj, key, kinds, where):
    """Returns an error string, or None when obj[key] is one of kinds."""
    if key not in obj:
        return f'missing field {key!r}'
    if not isinstance(obj[key], kinds):
        return f'field {key!r} has type {type(obj[key]).__name__}'
    if kinds is int and isinstance(obj[key], bool):
        return f'field {key!r} is a bool, expected an integer'
    return None


def check_counter(obj, key, where):
    err = expect(obj, key, int, where)
    if err is None and obj[key] < 0:
        err = f'field {key!r} is negative'
    return err


def check_log(path, min_lines):
    count = 0
    with open(path, encoding='utf-8') as handle:
        for lineno, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line:
                continue
            where = f'{path}:{lineno}'
            try:
                event = json.loads(line)
            except json.JSONDecodeError as err:
                return fail(where, f'not valid JSON: {err}')
            if not isinstance(event, dict):
                return fail(where, 'log line is not a JSON object')
            for key, kinds in (('ts_ns', int), ('level', str), ('site', str),
                               ('tid', int), ('msg', str),
                               ('suppressed', int), ('fields', dict)):
                err = expect(event, key, kinds, where)
                if err:
                    return fail(where, err)
            if event['level'] not in LOG_LEVELS:
                return fail(where, f'unknown level {event["level"]!r}')
            if event['suppressed'] < 0:
                return fail(where, 'negative suppressed count')
            for key, value in event['fields'].items():
                if not isinstance(key, str):
                    return fail(where, 'non-string field key')
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float, str)):
                    return fail(
                        where, f'field {key!r} is not a number or string')
            count += 1
    if count < min_lines:
        return fail(path, f'{count} log events, expected at least {min_lines}')
    print(f'{path}: OK ({count} log events)')
    return 0


def check_event(event, where):
    for key, kinds in (('ts_ns', int), ('request_id', int), ('kind', str),
                       ('detail', str), ('a', int), ('b', int)):
        err = expect(event, key, kinds, where)
        if err:
            return err
    if event['kind'] not in EVENT_KINDS:
        return f'unknown event kind {event["kind"]!r}'
    return None


def check_flight(path, min_records):
    with open(path, encoding='utf-8') as handle:
        try:
            dump = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f'not valid JSON: {err}')
    if not isinstance(dump, dict):
        return fail(path, 'flight dump is not a JSON object')
    policy = dump.get('policy')
    if not isinstance(policy, dict) or set(policy) != POLICY_KEYS:
        return fail(path, f'policy object malformed: {policy!r}')
    err = check_counter(dump, 'retained_total', path)
    if err:
        return fail(path, err)
    records = dump.get('records')
    if not isinstance(records, list):
        return fail(path, 'records is not a list')
    for index, record in enumerate(records):
        where = f'{path}: records[{index}]'
        if not isinstance(record, dict):
            return fail(where, 'record is not a JSON object')
        for key, kinds in (('id', int), ('tag', str), ('kind', str),
                           ('trigger', str), ('verdict', str),
                           ('start_ns', int), ('latency_nanos', int),
                           ('timed_out', bool), ('cancelled', bool),
                           ('shed', bool), ('effort', dict),
                           ('events', list), ('spans', list)):
            err = expect(record, key, kinds, where)
            if err:
                return fail(where, err)
        if record['id'] <= 0:
            return fail(where, 'record id must be positive')
        if record['trigger'] not in FLIGHT_TRIGGERS:
            return fail(where, f'unknown trigger {record["trigger"]!r}')
        if set(record['effort']) != EFFORT_KEYS:
            return fail(where, f'effort keys malformed: {record["effort"]!r}')
        for key in ('dropped_events', 'dropped_spans'):
            err = check_counter(record, key, where)
            if err:
                return fail(where, err)
        if len(record['events']) == 0:
            return fail(where, 'record retained no events')
        for pos, event in enumerate(record['events']):
            err = check_event(event, where)
            if err:
                return fail(f'{where}.events[{pos}]', err)
        span_ids = set()
        for pos, span in enumerate(record['spans']):
            span_where = f'{where}.spans[{pos}]'
            for key, kinds in (('name', str), ('start_ns', int),
                               ('dur_ns', int), ('id', int),
                               ('parent', int)):
                err = expect(span, key, kinds, span_where)
                if err:
                    return fail(span_where, err)
            if span['id'] <= 0:
                return fail(span_where, 'span id must be positive')
            span_ids.add(span['id'])
        for pos, span in enumerate(record['spans']):
            if span['parent'] != 0 and span['parent'] not in span_ids:
                return fail(f'{where}.spans[{pos}]',
                            f'parent {span["parent"]} not in this record')
    if len(records) < min_records:
        return fail(
            path, f'{len(records)} records, expected at least {min_records}')
    print(f'{path}: OK ({len(records)} flight records)')
    return 0


def check_crash(path):
    with open(path, encoding='utf-8') as handle:
        try:
            dump = json.load(handle)
        except json.JSONDecodeError as err:
            return fail(path, f'not valid JSON: {err}')
    if dump.get('crash') is not True:
        return fail(path, 'crash dump missing "crash": true')
    err = expect(dump, 'signal', int, path)
    if err:
        return fail(path, err)
    events = dump.get('events')
    if not isinstance(events, list):
        return fail(path, 'events is not a list')
    for pos, event in enumerate(events):
        err = expect(event, 'ring', int, path)
        if err is None:
            err = check_event(event, path)
        if err:
            return fail(f'{path}: events[{pos}]', err)
    counters = dump.get('counters')
    if not isinstance(counters, dict):
        return fail(path, 'counters is not a JSON object')
    for name, value in counters.items():
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            return fail(path, f'counter {name!r} is not a non-negative int')
    print(f'{path}: OK (crash dump, signal {dump["signal"]}, '
          f'{len(events)} events, {len(counters)} counters)')
    return 0


def main(argv):
    args = argv[1:]
    if not args:
        print(__doc__)
        return 1
    status = 0
    ran = False
    min_records = 0
    min_lines = 0
    if '--min-records' in args:
        at = args.index('--min-records')
        min_records = int(args[at + 1])
        del args[at:at + 2]
    if '--min-lines' in args:
        at = args.index('--min-lines')
        min_lines = int(args[at + 1])
        del args[at:at + 2]
    while args:
        flag = args.pop(0)
        if flag == '--log':
            status |= check_log(args.pop(0), min_lines)
        elif flag == '--flight':
            status |= check_flight(args.pop(0), min_records)
        elif flag == '--crash':
            status |= check_crash(args.pop(0))
        else:
            print(f'unknown argument {flag!r}')
            return 1
        ran = True
    if not ran:
        print(__doc__)
        return 1
    return status


if __name__ == '__main__':
    sys.exit(main(sys.argv))
