// Tests for the streaming coherence checker: equivalence with the batch
// Section 5.2 algorithm on generated traces, prompt violation detection,
// bounded-memory behavior, and end-to-end runs against both simulators.

#include <gtest/gtest.h>

#include "sim/directory.hpp"
#include "sim/machine.hpp"
#include "vmc/checker.hpp"
#include "vmc/online.hpp"
#include "workload/random.hpp"

namespace vermem::vmc {
namespace {

/// Replays an execution's events through the online checker in the given
/// global order; returns the checker for inspection.
OnlineCoherenceChecker replay(const Execution& exec, const Schedule& order,
                              bool check_finals = true) {
  OnlineCoherenceChecker checker(
      static_cast<std::uint32_t>(exec.num_processes()),
      {exec.initial_values().begin(), exec.initial_values().end()});
  for (const OpRef ref : order) {
    if (!checker.observe(ref.process, exec.op(ref))) break;
  }
  if (check_finals && checker.ok()) checker.finish(exec.final_values());
  return checker;
}

TEST(Online, AcceptsGeneratedCoherentStreams) {
  Xoshiro256ss rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 2 + rng.below(5);
    params.ops_per_history = 4 + rng.below(20);
    params.num_values = 2 + rng.below(5);
    params.rmw_fraction = rng.uniform01() * 0.5;
    const auto trace = workload::generate_coherent(params, rng);
    const auto checker = replay(trace.execution, trace.witness);
    EXPECT_TRUE(checker.ok()) << checker.violation()->reason;
    EXPECT_EQ(checker.stats().events, trace.execution.num_operations());
  }
}

TEST(Online, AcceptsMultiAddressScStreams) {
  Xoshiro256ss rng(3);
  workload::MultiAddressParams params;
  params.num_processes = 4;
  params.ops_per_process = 60;
  params.num_addresses = 5;
  const auto trace = workload::generate_sc(params, rng);
  const auto checker = replay(trace.execution, trace.witness);
  EXPECT_TRUE(checker.ok()) << checker.violation()->reason;
}

TEST(Online, FlagsFabricatedValueAtItsEvent) {
  // P0 writes 1,2; P1 reads 1 then (incoherently) 9.
  OnlineCoherenceChecker checker(2);
  EXPECT_TRUE(checker.observe(0, W(0, 1)));
  EXPECT_TRUE(checker.observe(1, R(0, 1)));
  EXPECT_TRUE(checker.observe(0, W(0, 2)));
  EXPECT_FALSE(checker.observe(1, R(0, 9)));
  ASSERT_TRUE(checker.violation().has_value());
  EXPECT_EQ(checker.violation()->event_index, 3u);
  EXPECT_EQ(checker.violation()->process, 1u);
  // The checker latches.
  EXPECT_FALSE(checker.observe(0, R(0, 2)));
}

TEST(Online, FlagsBackwardRead) {
  // A process that saw 2 cannot go back to 1 without a rewrite.
  OnlineCoherenceChecker checker(2);
  checker.observe(0, W(0, 1));
  checker.observe(0, W(0, 2));
  EXPECT_TRUE(checker.observe(1, R(0, 2)));
  EXPECT_FALSE(checker.observe(1, R(0, 1)));
}

TEST(Online, AllowsLaggingReader) {
  // A reader behind in time can still read the older write if it never
  // observed the newer one.
  OnlineCoherenceChecker checker(2);
  checker.observe(0, W(0, 1));
  checker.observe(0, W(0, 2));
  EXPECT_TRUE(checker.observe(1, R(0, 1)));
  EXPECT_TRUE(checker.observe(1, R(0, 2)));
}

TEST(Online, RmwMustReadSerializationTail) {
  OnlineCoherenceChecker checker(2);
  checker.observe(0, W(0, 1));
  EXPECT_TRUE(checker.observe(1, RW(0, 1, 2)));
  EXPECT_FALSE(checker.observe(0, RW(0, 1, 3)));  // tail is 2, not 1
}

TEST(Online, ReadOfInitialValueOnlyBeforeProgress) {
  OnlineCoherenceChecker checker(2, {{0, 7}});
  EXPECT_TRUE(checker.observe(1, R(0, 7)));
  checker.observe(0, W(0, 1));
  EXPECT_TRUE(checker.observe(1, R(0, 7)));  // still anchored before the write
  EXPECT_TRUE(checker.observe(1, R(0, 1)));
  EXPECT_FALSE(checker.observe(1, R(0, 7)));  // moved past; 7 is gone
}

TEST(Online, FinalValueMismatchFlagged) {
  OnlineCoherenceChecker checker(1);
  checker.observe(0, W(0, 1));
  EXPECT_FALSE(checker.finish({{0, 9}}));
  EXPECT_TRUE(checker.violation().has_value());
}

TEST(Online, SyncOpsPassThrough) {
  OnlineCoherenceChecker checker(1);
  EXPECT_TRUE(checker.observe(0, Acq(9)));
  EXPECT_TRUE(checker.observe(0, Rel(9)));
  EXPECT_TRUE(checker.ok());
}

TEST(Online, UnregisteredProcessRejected) {
  OnlineCoherenceChecker checker(1);
  EXPECT_FALSE(checker.observe(5, W(0, 1)));
}

TEST(Online, ResetClearsLatchedViolationAndStats) {
  OnlineCoherenceChecker checker(2, {{0, 7}});
  EXPECT_TRUE(checker.observe(0, W(0, 1)));
  EXPECT_FALSE(checker.observe(1, R(0, 9)));  // latch a violation
  ASSERT_TRUE(checker.violation().has_value());

  checker.reset();
  EXPECT_TRUE(checker.ok());
  EXPECT_FALSE(checker.violation().has_value());
  EXPECT_EQ(checker.stats().events, 0u);
  EXPECT_EQ(checker.stats().retained_entries, 0u);
  // Process count and initial values survive a plain reset: the seeded
  // initial value is readable again, and the old run's writes are gone.
  EXPECT_TRUE(checker.observe(1, R(0, 7)));
  EXPECT_FALSE(checker.observe(1, R(0, 1)));
}

TEST(Online, ResetReusesInstanceAcrossTraces) {
  // One pooled instance serving traces back-to-back must behave like a
  // fresh allocation for each.
  Xoshiro256ss rng(11);
  OnlineCoherenceChecker pooled(1);
  for (int trial = 0; trial < 10; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 2 + rng.below(4);
    params.ops_per_history = 4 + rng.below(12);
    params.num_values = 2 + rng.below(4);
    const auto trace = workload::generate_coherent(params, rng);
    pooled.reset(static_cast<std::uint32_t>(trace.execution.num_processes()),
                 {trace.execution.initial_values().begin(),
                  trace.execution.initial_values().end()});
    for (const OpRef ref : trace.witness)
      ASSERT_TRUE(pooled.observe(ref.process, trace.execution.op(ref)))
          << pooled.violation()->reason;
    EXPECT_TRUE(pooled.finish(trace.execution.final_values()));
    EXPECT_EQ(pooled.stats().events, trace.execution.num_operations());
  }
}

TEST(Online, ResetWithNewShapeRegistersProcesses) {
  OnlineCoherenceChecker checker(1);
  EXPECT_FALSE(checker.observe(2, W(0, 1)));  // unregistered process
  checker.reset(3, {{5, 1}});
  EXPECT_TRUE(checker.observe(2, R(5, 1)));
  EXPECT_TRUE(checker.observe(0, W(5, 2)));
  EXPECT_TRUE(checker.ok());
}

TEST(Online, WindowIsGarbageCollected) {
  // Two processes ping-ponging writes: anchors advance together, so the
  // retained window stays tiny even across thousands of writes.
  OnlineCoherenceChecker checker(2);
  Value v = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::uint32_t p = round % 2;
    checker.observe(p, W(0, ++v));
    checker.observe(1 - p, R(0, v));
    // The read does not advance the reader's anchor past the write... it
    // does (anchor = matched position). Both anchors track the tail.
  }
  ASSERT_TRUE(checker.ok());
  EXPECT_GT(checker.stats().discarded_entries, 1500u);
  EXPECT_LT(checker.stats().max_retained_entries, 16u);
}

TEST(Online, AgreesWithBatchCheckerOnFaultyStreams) {
  // Perturbed streams: online must agree with the batch write-order
  // checker (same algorithm, same inputs) on accept/reject.
  Xoshiro256ss rng(7);
  int rejected = 0;
  for (int trial = 0; trial < 40; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 3;
    params.ops_per_history = 8;
    params.num_values = 3;
    const auto trace = workload::generate_coherent(params, rng);
    auto faulted = workload::inject_fault(
        trace, workload::Fault::kStaleRead, rng);
    if (!faulted) continue;

    // Batch: original write order against the faulted execution.
    const VmcInstance instance{*faulted, 0};
    const auto batch = check_with_write_order(instance, trace.write_order);

    // Online: replay the faulted execution in the generating order.
    const auto checker = replay(*faulted, trace.witness, /*check_finals=*/true);
    EXPECT_EQ(checker.ok(), batch.verdict == Verdict::kCoherent)
        << "trial " << trial << ": " << batch.reason();
    rejected += !checker.ok();
  }
  EXPECT_GT(rejected, 0);
}

TEST(Online, BusMachineStreamVerifies) {
  Xoshiro256ss rng(11);
  sim::RandomProgramParams params;
  params.num_cores = 4;
  params.requests_per_core = 300;
  params.num_addresses = 8;
  const auto programs = sim::random_programs(params, rng);
  sim::SimConfig config;
  config.num_cores = 4;
  config.cache_lines = 4;
  config.seed = 11;
  const auto result = sim::run_programs(programs, config);
  const auto checker = replay(result.execution, result.commit_order);
  EXPECT_TRUE(checker.ok()) << checker.violation()->reason;
}

TEST(Online, DirectoryMachineStreamVerifies) {
  Xoshiro256ss rng(13);
  sim::RandomProgramParams params;
  params.num_cores = 4;
  params.requests_per_core = 200;
  params.num_addresses = 8;
  const auto programs = sim::random_programs(params, rng);
  sim::DirectoryConfig config;
  config.num_nodes = 4;
  config.cache_lines = 4;
  config.seed = 13;
  const auto result = sim::run_programs_directory(programs, config);
  const auto checker = replay(result.execution, result.commit_order);
  EXPECT_TRUE(checker.ok()) << checker.violation()->reason;
}

TEST(Online, CatchesSimulatorFaultsInFlight) {
  // Stale-fill faults must trip the online checker on some seed, at the
  // event where the stale data is observed.
  sim::FaultPlan plan;
  plan.stale_fill = 0.5;
  int flagged = 0, faulty = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Xoshiro256ss rng(seed);
    sim::RandomProgramParams params;
    params.num_cores = 4;
    params.requests_per_core = 60;
    params.num_addresses = 6;
    const auto programs = sim::random_programs(params, rng);
    sim::SimConfig config;
    config.num_cores = 4;
    config.cache_lines = 4;
    config.seed = seed;
    config.faults = plan;
    const auto result = sim::run_programs(programs, config);
    if (result.stats.faults_injected == 0) continue;
    ++faulty;
    const auto checker = replay(result.execution, result.commit_order);
    flagged += !checker.ok();
  }
  EXPECT_GT(faulty, 0);
  EXPECT_GT(flagged, 0);
}

}  // namespace
}  // namespace vermem::vmc
