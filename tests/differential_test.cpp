// Differential fuzzing across every VMC decision procedure in the
// repository. For a large battery of seeded random instances — coherent
// by construction, mutated, and adversarial (reduction-generated) — all
// applicable checkers must return identical verdicts, and every witness
// must certify. This is the suite that makes a silent divergence between
// two implementations practically impossible to ship.

#include <gtest/gtest.h>

#include "encode/naive.hpp"
#include "encode/vmc_to_cnf.hpp"
#include "encode/vsc_to_cnf.hpp"
#include "reductions/sat_to_vmc.hpp"
#include "sat/gen.hpp"
#include "trace/address_index.hpp"
#include "trace/schedule.hpp"
#include "vmc/bounded.hpp"
#include "vmc/checker.hpp"
#include "vmc/exact.hpp"
#include "vmc/online.hpp"
#include "vmc/write_order.hpp"
#include "vsc/exact.hpp"
#include "vsc/vscc.hpp"
#include "workload/random.hpp"

namespace vermem {
namespace {

using vmc::Verdict;
using vmc::VmcInstance;
using workload::Fault;

struct Verdicts {
  std::string checker;
  vmc::CheckResult result;
};

/// Runs every total checker on the instance; returns the list.
std::vector<Verdicts> run_all(const VmcInstance& instance) {
  std::vector<Verdicts> all;
  all.push_back({"exact-dfs", vmc::check_exact(instance)});
  all.push_back({"bounded-k-bfs", vmc::check_bounded_k(instance)});
  all.push_back({"sat-production", encode::check_via_sat(instance)});
  all.push_back({"sat-naive", encode::check_via_sat_naive(instance)});
  all.push_back({"auto-cascade", vmc::check_auto(instance)});
  return all;
}

class DifferentialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSweep, AllCheckersAgreeOnSeededBattery) {
  Xoshiro256ss rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 2 + rng.below(4);
    params.ops_per_history = 1 + rng.below(6);
    params.num_values = 1 + rng.below(5);
    params.write_fraction = 0.2 + rng.uniform01() * 0.6;
    params.rmw_fraction = rng.uniform01() * 0.6;
    params.record_final_value = rng.chance(0.7);
    const auto trace = workload::generate_coherent(params, rng);

    std::vector<std::pair<std::string, Execution>> cases;
    cases.emplace_back("clean", trace.execution);
    for (const Fault f : {Fault::kStaleRead, Fault::kLostWrite,
                          Fault::kFabricatedRead, Fault::kReorderedOps}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.emplace_back(to_string(f), std::move(*faulted));
    }

    for (const auto& [label, exec] : cases) {
      const VmcInstance instance{exec, 0};
      const auto verdicts = run_all(instance);
      const Verdict expected = verdicts.front().result.verdict;
      ASSERT_NE(expected, Verdict::kUnknown);
      for (const auto& [checker, result] : verdicts) {
        EXPECT_EQ(result.verdict, expected)
            << checker << " diverges on " << label << " (seed " << GetParam()
            << " trial " << trial << "): " << result.reason();
        if (result.verdict == Verdict::kCoherent) {
          const auto valid = check_coherent_schedule(exec, 0, result.witness);
          EXPECT_TRUE(valid.ok) << checker << ": " << valid.violation;
        }
      }

      // The write-order path must be sound w.r.t. the consensus verdict:
      // if it accepts the generating order, the instance is coherent.
      if (label == "clean") {
        const auto with_order =
            vmc::check_with_write_order(instance, trace.write_order);
        EXPECT_EQ(with_order.verdict, Verdict::kCoherent) << with_order.reason();
      }

      // The online checker on the generating stream must agree with the
      // batch write-order checker fed the same serialization.
      if (exec == trace.execution) {
        vmc::OnlineCoherenceChecker online(
            static_cast<std::uint32_t>(exec.num_processes()),
            {exec.initial_values().begin(), exec.initial_values().end()});
        for (const OpRef ref : trace.witness)
          if (!online.observe(ref.process, exec.op(ref))) break;
        if (online.ok()) online.finish(exec.final_values());
        EXPECT_TRUE(online.ok())
            << "online rejected a clean stream: " << online.violation()->reason;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedBattery, DifferentialSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

TEST(DifferentialReductions, AllCheckersAgreeOnAdversarialInstances) {
  // Reduction-generated instances are the adversarial family: tiny
  // formulas keep the exact searches feasible while still exercising the
  // gadget structure.
  Xoshiro256ss rng(42);
  for (int trial = 0; trial < 6; ++trial) {
    const auto cnf = sat::random_ksat(3, 1 + rng.below(4), 3, rng);
    const auto red = reductions::sat_to_vmc(cnf);
    const auto verdicts = run_all(red.instance);
    const Verdict expected = verdicts.front().result.verdict;
    for (const auto& [checker, result] : verdicts) {
      EXPECT_EQ(result.verdict, expected) << checker;
    }
  }
}

// ---- Multi-address differential: SC deciders ------------------------------

/// Flips one random read's observed value to a random other value present
/// in the trace (may or may not break SC).
std::optional<Execution> flip_read(const workload::GeneratedMultiTrace& trace,
                                   Xoshiro256ss& rng) {
  std::vector<OpRef> reads;
  std::vector<Value> values{0};
  for (std::uint32_t p = 0; p < trace.execution.num_processes(); ++p) {
    for (std::uint32_t i = 0; i < trace.execution.history(p).size(); ++i) {
      const Operation& op = trace.execution.history(p)[i];
      if (op.kind == OpKind::kRead) reads.push_back(OpRef{p, i});
      if (op.writes_memory()) values.push_back(op.value_written);
    }
  }
  if (reads.empty()) return std::nullopt;
  const OpRef target = reads[rng.below(reads.size())];
  const Value new_value = values[rng.below(values.size())];

  std::vector<ProcessHistory> histories;
  for (std::uint32_t p = 0; p < trace.execution.num_processes(); ++p) {
    auto ops = trace.execution.history(p).ops();
    if (p == target.process) ops[target.index].value_read = new_value;
    histories.emplace_back(std::move(ops));
  }
  Execution out{std::move(histories)};
  for (const auto& [a, v] : trace.execution.initial_values())
    out.set_initial_value(a, v);
  for (const auto& [a, v] : trace.execution.final_values())
    out.set_final_value(a, v);
  return out;
}

class ScDifferentialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScDifferentialSweep, ScDecidersAgree) {
  Xoshiro256ss rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    workload::MultiAddressParams params;
    params.num_processes = 2 + rng.below(2);
    params.ops_per_process = 2 + rng.below(5);
    params.num_addresses = 1 + rng.below(3);
    params.num_values = 2 + rng.below(3);
    const auto trace = workload::generate_sc(params, rng);

    std::vector<Execution> cases{trace.execution};
    if (auto flipped = flip_read(trace, rng)) cases.push_back(std::move(*flipped));

    for (const Execution& exec : cases) {
      const auto exact = vsc::check_sc_exact(exec);
      const auto via_sat = encode::check_sc_via_sat(exec);
      ASSERT_NE(exact.verdict, vmc::Verdict::kUnknown);
      ASSERT_NE(via_sat.verdict, vmc::Verdict::kUnknown) << via_sat.reason();
      EXPECT_EQ(via_sat.verdict, exact.verdict) << via_sat.reason();
      if (via_sat.verdict == vmc::Verdict::kCoherent) {
        const auto valid = check_sc_schedule(exec, via_sat.witness);
        EXPECT_TRUE(valid.ok) << valid.violation;
      }
      // VSCC must agree with exact SC whenever coherence is decidable.
      const auto pipeline = vsc::check_vscc(exec);
      if (pipeline.sc.verdict != vmc::Verdict::kUnknown) {
        EXPECT_EQ(pipeline.sc.verdict, exact.verdict) << pipeline.sc.reason();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedBattery, ScDifferentialSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- AddressIndex vs legacy projection -----------------------------------

/// The single-pass index must reproduce Execution::project() *exactly* —
/// histories, origin refs, initial and final values — on randomized
/// workloads, or every consumer rewired onto it silently diverges.
class ProjectionDifferentialSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProjectionDifferentialSweep, IndexMatchesLegacyProject) {
  Xoshiro256ss rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    workload::MultiAddressParams params;
    params.num_processes = 1 + rng.below(6);
    params.ops_per_process = 1 + rng.below(40);
    params.num_addresses = 1 + rng.below(12);
    params.num_values = 2 + rng.below(6);
    params.rmw_fraction = rng.chance(0.3) ? 0.5 : 0.0;
    params.record_final_values = rng.chance(0.5);
    const auto trace = workload::generate_sc(params, rng);
    const Execution& exec = trace.execution;

    const AddressIndex index(exec);
    const auto legacy_addrs = exec.addresses();
    ASSERT_EQ(std::vector<Addr>(index.addresses().begin(),
                                index.addresses().end()),
              legacy_addrs);

    for (const Addr addr : legacy_addrs) {
      const auto legacy = exec.project(addr);
      const ProjectedView view = index.view(addr);
      const auto indexed = view.materialize();
      ASSERT_EQ(indexed.execution, legacy.execution) << "addr " << addr;
      ASSERT_EQ(indexed.origin, legacy.origin) << "addr " << addr;

      // Stats agree with the materialized instance, and the coordinate
      // maps round-trip for every projected operation.
      EXPECT_EQ(view.num_ops(), legacy.execution.num_operations());
      EXPECT_EQ(view.num_histories(), legacy.execution.num_processes());
      std::size_t writes = 0;
      bool rmw_only = true;
      for (std::uint32_t h = 0; h < legacy.origin.size(); ++h) {
        for (std::uint32_t i = 0; i < legacy.origin[h].size(); ++i) {
          const OpRef original = legacy.origin[h][i];
          const auto projected = view.projected_of(original);
          ASSERT_TRUE(projected.has_value());
          EXPECT_EQ(*projected, (OpRef{h, i}));
          EXPECT_EQ(view.original_of(*projected), original);
          const Operation& op = exec.op(original);
          writes += op.writes_memory();
          rmw_only &= op.kind == OpKind::kRmw;
        }
      }
      EXPECT_EQ(view.stats().write_count, writes);
      EXPECT_EQ(view.stats().rmw_only, rmw_only);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedBattery, ProjectionDifferentialSweep,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace vermem
