// Tests for the VMC -> CNF encoding and the SAT-based checker. The key
// property: check_via_sat agrees with the exact search on every instance
// we can throw at it, and its witnesses always certify.

#include <gtest/gtest.h>

#include "encode/vmc_to_cnf.hpp"
#include "reductions/sat_to_vmc.hpp"
#include "sat/brute.hpp"
#include "sat/gen.hpp"
#include "trace/schedule.hpp"
#include "vmc/exact.hpp"
#include "workload/random.hpp"

namespace vermem::encode {
namespace {

using vmc::Verdict;
using vmc::VmcInstance;
using workload::Fault;

VmcInstance make(const Execution& exec) { return VmcInstance{exec, 0}; }

TEST(Encode, EmptyInstance) {
  const auto enc = encode_vmc(make(Execution{}));
  EXPECT_FALSE(enc.trivially_incoherent);
  EXPECT_EQ(enc.num_writes(), 0u);
  EXPECT_EQ(check_via_sat(make(Execution{})).verdict, Verdict::kCoherent);
}

TEST(Encode, UnwrittenReadIsTriviallyIncoherent) {
  const auto exec = ExecutionBuilder().process(R(0, 9)).build();
  const auto enc = encode_vmc(make(exec));
  EXPECT_TRUE(enc.trivially_incoherent);
  EXPECT_EQ(check_via_sat(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(Encode, FinalValueNeverWritten) {
  const auto exec =
      ExecutionBuilder().process(W(0, 1)).final_value(0, 7).build();
  EXPECT_EQ(check_via_sat(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(Encode, FinalValueWithNoWrites) {
  const auto ok = ExecutionBuilder().process(R(0, 0)).final_value(0, 0).build();
  EXPECT_EQ(check_via_sat(make(ok)).verdict, Verdict::kCoherent);
  const auto bad = ExecutionBuilder().process(R(0, 0)).final_value(0, 1).build();
  EXPECT_EQ(check_via_sat(make(bad)).verdict, Verdict::kIncoherent);
}

TEST(Encode, VariableAndClauseCountsAreModest) {
  Xoshiro256ss rng(3);
  workload::SingleAddressParams params;
  params.num_histories = 4;
  params.ops_per_history = 8;
  const auto trace = workload::generate_coherent(params, rng);
  const auto enc = encode_vmc(make(trace.execution));
  const std::size_t w = enc.num_writes();
  EXPECT_EQ(enc.order_vars.size(), w * (w - 1) / 2);
  // O(W^3 + R*W^2) clause bound with a generous constant.
  EXPECT_LE(enc.cnf.num_clauses(), w * w * w + 32 * w * w + 64);
}

TEST(Encode, DecodeRecoversAConsistentOrder) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), R(0, 2))
                        .process(W(0, 2))
                        .build();
  const auto enc = encode_vmc(make(exec));
  const auto solved = sat::solve(enc.cnf);
  ASSERT_EQ(solved.status, sat::Status::kSat);
  const auto order = enc.decode_write_order(solved.model);
  ASSERT_EQ(order.size(), 2u);
  // R(0,2) forces W(0,1) before W(0,2).
  EXPECT_EQ(order[0], (OpRef{0, 0}));
  EXPECT_EQ(order[1], (OpRef{1, 0}));
}

TEST(Encode, AgreesWithExactOnRandomTraces) {
  Xoshiro256ss rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 2 + rng.below(4);
    params.ops_per_history = 2 + rng.below(6);
    params.num_values = 2 + rng.below(4);
    params.rmw_fraction = rng.uniform01() * 0.5;
    const auto trace = workload::generate_coherent(params, rng);

    std::vector<Execution> cases{trace.execution};
    for (const Fault f : {Fault::kStaleRead, Fault::kLostWrite,
                          Fault::kFabricatedRead, Fault::kReorderedOps}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }
    for (const auto& exec : cases) {
      const auto instance = make(exec);
      const auto via_sat = check_via_sat(instance);
      const auto exact = vmc::check_exact(instance);
      ASSERT_NE(via_sat.verdict, Verdict::kUnknown) << via_sat.reason();
      EXPECT_EQ(via_sat.verdict, exact.verdict)
          << "trial " << trial << ": " << via_sat.reason();
      if (via_sat.verdict == Verdict::kCoherent) {
        const auto valid = check_coherent_schedule(exec, 0, via_sat.witness);
        EXPECT_TRUE(valid.ok) << valid.violation;
      }
    }
  }
}

TEST(Encode, AgreesWithExactOnReductionInstances) {
  // The adversarial family: SAT -> VMC -> CNF -> SAT round trip.
  Xoshiro256ss rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    const auto cnf = sat::random_ksat(static_cast<sat::Var>(3 + rng.below(2)),
                                      1 + rng.below(8), 3, rng);
    const bool satisfiable = sat::solve_brute(cnf).has_value();
    const auto red = reductions::sat_to_vmc(cnf);
    const auto via_sat = check_via_sat(red.instance);
    ASSERT_NE(via_sat.verdict, Verdict::kUnknown) << via_sat.reason();
    EXPECT_EQ(via_sat.verdict == Verdict::kCoherent, satisfiable);
  }
}

TEST(Encode, SolverBudgetPropagates) {
  Xoshiro256ss rng(17);
  workload::SingleAddressParams params;
  params.num_histories = 8;
  params.ops_per_history = 10;
  params.num_values = 2;
  const auto trace = workload::generate_coherent(params, rng);
  sat::SolverOptions options;
  options.max_conflicts = 1;
  const auto result = check_via_sat(make(trace.execution), options);
  // Either it solves within one conflict or reports unknown — never wrong.
  if (result.verdict == Verdict::kCoherent) {
    const auto valid = check_coherent_schedule(trace.execution, 0, result.witness);
    EXPECT_TRUE(valid.ok);
  }
}

}  // namespace
}  // namespace vermem::encode
