// Tests for the coherence-order saturation tier: the constraint-graph
// engine itself (cycle / forced-total / partial / contradiction
// outcomes), the typed certificates it produces through the router and
// their independent re-checking, the must-precede pruning oracle's
// bit-identical-search guarantee, the CNF order hints, and the
// graph-derived lint rules W005/W006 plus the W002 final-section
// regression.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/router.hpp"
#include "analysis/saturate/core.hpp"
#include "certify/certificate.hpp"
#include "certify/check.hpp"
#include "encode/vmc_to_cnf.hpp"
#include "sat/solver.hpp"
#include "trace/address_index.hpp"
#include "trace/schedule.hpp"
#include "vmc/checker.hpp"
#include "vmc/exact.hpp"
#include "workload/random.hpp"

namespace {

using namespace vermem;
using analysis::Decider;
using analysis::RuleId;
using certify::IncoherenceKind;
using saturate::Status;

// --- helpers --------------------------------------------------------------

saturate::Result saturate_addr(const Execution& exec, Addr addr) {
  const AddressIndex index(exec);
  return saturate::saturate(index.view(addr));
}

bool has_rule(const analysis::AnalysisReport& report, RuleId rule) {
  for (const analysis::AddressAnalysis& address : report.addresses)
    for (const analysis::Diagnostic& d : address.diagnostics)
      if (d.rule == rule) return true;
  return false;
}

std::size_t count_rule(const analysis::AnalysisReport& report, RuleId rule) {
  std::size_t n = 0;
  for (const analysis::AddressAnalysis& address : report.addresses)
    for (const analysis::Diagnostic& d : address.diagnostics)
      if (d.rule == rule) ++n;
  return n;
}

/// Builds the must-precede oracle an exact search would receive for this
/// view, in the materialized instance's (local) coordinates.
vmc::MustPrecede oracle_for(const saturate::Result& sat,
                            const vmc::VmcInstance& instance) {
  vmc::MustPrecede oracle;
  for (const auto& [a, b] : sat.edges)
    oracle.add_edge(sat.writes_local[a], sat.writes_local[b]);
  std::vector<std::uint32_t> sizes;
  for (std::uint32_t p = 0; p < instance.execution.num_processes(); ++p)
    sizes.push_back(
        static_cast<std::uint32_t>(instance.execution.history(p).size()));
  oracle.finalize(sizes);
  return oracle;
}

// --- engine outcomes ------------------------------------------------------

TEST(Saturate, CrossReadCycle) {
  // Each read pins the other history's write between its neighbours:
  // W(0,1) -> W(0,2) from P0's read and W(0,2) -> W(0,1) from P1's.
  const Execution exec = ExecutionBuilder()
                             .process(W(0, 1), R(0, 2))
                             .process(W(0, 2), R(0, 1))
                             .build();
  const auto result = saturate_addr(exec, 0);
  ASSERT_EQ(result.status, Status::kCycle);
  ASSERT_GE(result.cycle.size(), 2u);
  // Every consecutive cycle edge must be derivable from the direct graph.
  for (std::size_t i = 0; i < result.cycle.size(); ++i)
    EXPECT_TRUE(saturate::reaches(result, result.cycle[i],
                                  result.cycle[(i + 1) % result.cycle.size()]));
}

TEST(Saturate, ForcedTotalOrderFromProgramOrder) {
  const Execution exec = ExecutionBuilder()
                             .process(W(0, 1), W(0, 2))
                             .process(R(0, 2), R(0, 1))
                             .build();
  const auto result = saturate_addr(exec, 0);
  ASSERT_EQ(result.status, Status::kForcedTotal);
  ASSERT_EQ(result.forced.size(), 2u);
  EXPECT_EQ(result.writes[result.forced[0]], (OpRef{0, 0}));
  EXPECT_EQ(result.writes[result.forced[1]], (OpRef{0, 1}));
  EXPECT_EQ(result.branch_points, 0u);
}

TEST(Saturate, IndependentChainsStayPartial) {
  const Execution exec = ExecutionBuilder()
                             .process(W(0, 1), W(0, 2))
                             .process(W(0, 3), W(0, 4))
                             .build();
  const auto result = saturate_addr(exec, 0);
  ASSERT_EQ(result.status, Status::kPartial);
  EXPECT_GE(result.branch_points, 1u);
  EXPECT_GE(result.max_concurrent, 2u);
  const auto [a, b] = result.unordered_example;
  EXPECT_NE(a, b);
  EXPECT_FALSE(saturate::reaches(result, a, b));
  EXPECT_FALSE(saturate::reaches(result, b, a));
}

TEST(Saturate, SccCondensationCollapsesTransientCycle) {
  // P0/P1's reads pin each other's write into a two-node cycle mid-round
  // (the classic CrossReadCycle shape); P1's trailing R(0,3) then issues
  // an R2 reachability query with two candidates {P2, P3}. That query
  // runs on the SCC condensation built AFTER the cycle-closing pin, so
  // the four writes collapse to three components: {W(0,1), W(0,2)} as
  // one cluster plus the two W(0,3) singletons. The post-round cycle
  // check still refutes the address.
  const Execution exec = ExecutionBuilder()
                             .process(W(0, 1), R(0, 2))
                             .process(W(0, 2), R(0, 1), R(0, 3))
                             .process(W(0, 3))
                             .process(W(0, 3))
                             .build();
  const auto result = saturate_addr(exec, 0);
  ASSERT_EQ(result.status, Status::kCycle);
  EXPECT_EQ(result.num_writes(), 4u);
  EXPECT_GE(result.reach_queries, 1u);
  ASSERT_GE(result.scc_builds, 1u);
  EXPECT_EQ(result.scc_components, 3u);
}

TEST(Saturate, SccCondensationTrivialOnAcyclicGraph) {
  // Same query shape without the cycle: every write is its own
  // component, so the condensation is the graph itself and R2 pruning
  // behaves exactly as the raw walk did.
  const Execution exec = ExecutionBuilder()
                             .process(W(0, 1), R(0, 2), W(0, 3))
                             .process(W(0, 2))
                             .process(W(0, 3))
                             .process(W(0, 5), R(0, 3))
                             .build();
  const auto result = saturate_addr(exec, 0);
  ASSERT_EQ(result.status, Status::kPartial);
  ASSERT_GE(result.scc_builds, 1u);
  EXPECT_EQ(result.scc_components, result.num_writes());
}

TEST(Saturate, ContradictionKinds) {
  {
    const Execution exec = ExecutionBuilder().process(R(0, 5)).build();
    const auto result = saturate_addr(exec, 0);
    ASSERT_EQ(result.status, Status::kContradiction);
    ASSERT_TRUE(result.contradiction.has_value());
    EXPECT_EQ(result.contradiction->kind,
              saturate::ContradictionKind::kUnwrittenRead);
  }
  {
    // Initial-value read after an own earlier write, with no write of
    // the initial value anywhere.
    const Execution exec =
        ExecutionBuilder().process(W(0, 1), R(0, 0)).build();
    const auto result = saturate_addr(exec, 0);
    ASSERT_EQ(result.status, Status::kContradiction);
    EXPECT_EQ(result.contradiction->kind,
              saturate::ContradictionKind::kStaleInitialRead);
  }
  {
    // The value's unique write follows the read in program order.
    const Execution exec =
        ExecutionBuilder().process(R(0, 1), W(0, 1)).build();
    const auto result = saturate_addr(exec, 0);
    ASSERT_EQ(result.status, Status::kContradiction);
    EXPECT_EQ(result.contradiction->kind,
              saturate::ContradictionKind::kReadBeforeWrite);
  }
  {
    const Execution exec =
        ExecutionBuilder().process(W(0, 1)).final_value(0, 2).build();
    const auto result = saturate_addr(exec, 0);
    ASSERT_EQ(result.status, Status::kContradiction);
    EXPECT_EQ(result.contradiction->kind,
              saturate::ContradictionKind::kUnwritableFinal);
  }
}

// Every derived must-edge is *necessary*, so it must hold in the
// generator's ground-truth write order of any coherent-by-construction
// trace — the strongest cheap soundness check we have.
TEST(Saturate, MustEdgesHoldInGeneratingWriteOrder) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Xoshiro256ss rng(seed * 0x9e3779b97f4a7c15ull);
    workload::SingleAddressParams params;
    params.num_histories = 4;
    params.ops_per_history = 10;
    params.num_values = 3;  // contended: duplicate values, general shape
    const workload::GeneratedTrace trace =
        workload::generate_coherent(params, rng);
    const AddressIndex index(trace.execution);
    if (index.num_addresses() == 0) continue;
    const auto result = saturate::saturate(index.view_at(0));
    EXPECT_NE(result.status, Status::kCycle) << "seed " << seed;
    EXPECT_NE(result.status, Status::kContradiction) << "seed " << seed;
    EXPECT_FALSE(result.pruned_empty_read) << "seed " << seed;

    std::unordered_map<std::uint64_t, std::size_t> pos;
    const auto key = [](OpRef ref) {
      return (static_cast<std::uint64_t>(ref.process) << 32) | ref.index;
    };
    for (std::size_t i = 0; i < trace.write_order.size(); ++i)
      pos.emplace(key(trace.write_order[i]), i);
    for (const auto& [a, b] : result.edges) {
      const auto pa = pos.find(key(result.writes[a]));
      const auto pb = pos.find(key(result.writes[b]));
      ASSERT_NE(pa, pos.end());
      ASSERT_NE(pb, pos.end());
      EXPECT_LT(pa->second, pb->second)
          << "seed " << seed << ": derived edge contradicts the "
          << "generating write order — unsound";
    }
  }
}

// --- router + certificates ------------------------------------------------

TEST(SaturateRouting, CycleYieldsCheckableCertificate) {
  // Duplicate value 3 defeats the write-once fragment so the trace
  // routes through the saturation tier.
  const Execution exec = ExecutionBuilder()
                             .process(W(0, 1), R(0, 2), W(0, 3))
                             .process(W(0, 2), R(0, 1), W(0, 3))
                             .build();
  const AddressIndex index(exec);
  const analysis::RoutedReport routed = analysis::verify_coherence_routed(index);
  ASSERT_EQ(routed.report.verdict, vmc::Verdict::kIncoherent);
  EXPECT_EQ(routed.deciders[0], Decider::kSaturate);
  EXPECT_EQ(routed.saturate_decided, 1u);
  EXPECT_EQ(routed.saturate_cycles, 1u);

  const vmc::CheckResult& result = routed.report.addresses[0].result;
  ASSERT_NE(result.incoherence(), nullptr);
  EXPECT_EQ(result.incoherence()->kind, IncoherenceKind::kSaturationCycle);

  const certify::Certificate cert =
      certify::from_result(certify::Scope::kAddress, 0, result);
  EXPECT_TRUE(certify::check(exec, cert).ok);

  // Mutations: a truncated cycle and a non-write op must both be
  // rejected by the independent checker.
  certify::Certificate truncated = cert;
  std::get<certify::Incoherence>(truncated.evidence).ops.pop_back();
  EXPECT_FALSE(certify::check(exec, truncated).ok);

  certify::Certificate nonwrite = cert;
  std::get<certify::Incoherence>(nonwrite.evidence).ops[0] = OpRef{0, 1};
  EXPECT_FALSE(certify::check(exec, nonwrite).ok);
}

TEST(SaturateRouting, ForcedOrderRefutationCertificate) {
  // The write order is fully forced (program order + pinned reads), and
  // the Section 5.2 re-run under it refutes the address.
  const Execution exec = ExecutionBuilder()
                             .process(W(0, 1), W(0, 2))
                             .process(R(0, 2), R(0, 1), W(0, 3), W(0, 3))
                             .build();
  const AddressIndex index(exec);
  const analysis::RoutedReport routed = analysis::verify_coherence_routed(index);
  ASSERT_EQ(routed.report.verdict, vmc::Verdict::kIncoherent);
  EXPECT_EQ(routed.deciders[0], Decider::kSaturate);
  EXPECT_EQ(routed.saturate_forced, 1u);

  const vmc::CheckResult& result = routed.report.addresses[0].result;
  ASSERT_NE(result.incoherence(), nullptr);
  EXPECT_EQ(result.incoherence()->kind,
            IncoherenceKind::kForcedOrderRefutation);

  const certify::Certificate cert =
      certify::from_result(certify::Scope::kAddress, 0, result);
  EXPECT_TRUE(certify::check(exec, cert).ok);

  // A transposed forced order no longer matches the re-derived one.
  certify::Certificate swapped = cert;
  auto& order = std::get<certify::Incoherence>(swapped.evidence).write_order;
  ASSERT_GE(order.size(), 2u);
  std::swap(order[0], order[1]);
  EXPECT_FALSE(certify::check(exec, swapped).ok);
}

TEST(SaturateRouting, ForcedOrderCoherentDecidedWithoutSearch) {
  const Execution exec = ExecutionBuilder()
                             .process(W(0, 1), W(0, 2))
                             .process(R(0, 1), R(0, 2), W(0, 2))
                             .build();
  const AddressIndex index(exec);
  const analysis::RoutedReport routed = analysis::verify_coherence_routed(index);
  ASSERT_EQ(routed.report.verdict, vmc::Verdict::kCoherent);
  EXPECT_EQ(routed.deciders[0], Decider::kSaturate);
  EXPECT_EQ(routed.saturate_decided, 1u);
  EXPECT_EQ(routed.exact_routed, 0u);
  const vmc::CheckResult& result = routed.report.addresses[0].result;
  const auto check = check_coherent_schedule(exec, 0, result.witness);
  EXPECT_TRUE(check.ok) << check.violation;
}

// --- differential: routed (with saturation tier) vs exact ----------------

TEST(SaturateDifferential, RoutedMatchesExactOnRandomTraces) {
  std::size_t saturate_routed = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Xoshiro256ss rng(seed * 0xd1342543de82ef95ull);
    workload::SingleAddressParams params;
    params.num_histories = 3 + seed % 3;
    params.ops_per_history = 8;
    params.num_values = 2 + seed % 3;
    const workload::GeneratedTrace trace =
        workload::generate_coherent(params, rng);

    std::vector<Execution> cases;
    cases.push_back(trace.execution);
    const auto fault = static_cast<workload::Fault>(seed % 4);
    if (auto faulty = workload::inject_fault(trace, fault, rng))
      cases.push_back(std::move(*faulty));

    for (const Execution& exec : cases) {
      const AddressIndex index(exec);
      if (index.num_addresses() == 0) continue;
      const analysis::RoutedReport routed =
          analysis::verify_coherence_routed(index);
      if (routed.saturate_ran > 0) ++saturate_routed;

      const Addr addr = index.entry(0).addr;
      const auto projection = index.view_at(0).materialize();
      const vmc::CheckResult exact =
          vmc::check_exact(vmc::VmcInstance{projection.execution, addr});
      EXPECT_EQ(routed.report.verdict, exact.verdict) << "seed " << seed;

      const vmc::CheckResult& result = routed.report.addresses[0].result;
      if (result.verdict == vmc::Verdict::kCoherent) {
        const auto check = check_coherent_schedule(exec, addr, result.witness);
        EXPECT_TRUE(check.ok) << "seed " << seed << ": " << check.violation;
      } else if (result.verdict == vmc::Verdict::kIncoherent) {
        const certify::Certificate cert =
            certify::from_result(certify::Scope::kAddress, addr, result);
        EXPECT_TRUE(certify::check(exec, cert).ok) << "seed " << seed;
      }
    }
  }
  // The parameter mix must actually exercise the new tier.
  EXPECT_GT(saturate_routed, 0u);
}

// --- must-precede pruning oracle ------------------------------------------

TEST(SaturateOracle, PrunedSearchIsBitIdentical) {
  std::uint64_t total_oracle_prunes = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Xoshiro256ss rng(seed * 0xbf58476d1ce4e5b9ull);
    workload::SingleAddressParams params;
    params.num_histories = 4;
    params.ops_per_history = 10;
    params.num_values = 3;
    const workload::GeneratedTrace trace =
        workload::generate_coherent(params, rng);

    std::vector<Execution> cases;
    cases.push_back(trace.execution);
    if (auto faulty = workload::inject_fault(
            trace, workload::Fault::kStaleRead, rng))
      cases.push_back(std::move(*faulty));

    for (const Execution& exec : cases) {
      const AddressIndex index(exec);
      if (index.num_addresses() == 0) continue;
      const auto view = index.view_at(0);
      const auto sat = saturate::saturate(view);
      if (sat.edges.empty()) continue;
      const auto projection = view.materialize();
      const vmc::VmcInstance instance{projection.execution,
                                      index.entry(0).addr};
      const vmc::MustPrecede oracle = oracle_for(sat, instance);

      const vmc::CheckResult plain = vmc::check_exact(instance);
      vmc::ExactOptions with_oracle;
      with_oracle.pruner = &oracle;
      const vmc::CheckResult pruned = vmc::check_exact(instance, with_oracle);

      EXPECT_EQ(plain.verdict, pruned.verdict) << "seed " << seed;
      EXPECT_EQ(plain.witness, pruned.witness) << "seed " << seed;
      if (plain.verdict == vmc::Verdict::kIncoherent) {
        EXPECT_EQ(plain.incoherence()->kind, pruned.incoherence()->kind);
      }
      EXPECT_LE(pruned.stats.states_visited, plain.stats.states_visited);
      total_oracle_prunes += pruned.stats.oracle_prunes;
      EXPECT_EQ(plain.stats.oracle_prunes, 0u);
    }
  }
  // The oracle must actually cut branches somewhere in the mix.
  EXPECT_GT(total_oracle_prunes, 0u);
}

// --- CNF order hints ------------------------------------------------------

TEST(SaturateEncode, HintedEncodingPreservesSatisfiability) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Xoshiro256ss rng(seed * 0x94d049bb133111ebull);
    workload::SingleAddressParams params;
    params.num_histories = 3;
    params.ops_per_history = 6;
    params.num_values = 3;
    const workload::GeneratedTrace trace =
        workload::generate_coherent(params, rng);

    std::vector<Execution> cases;
    cases.push_back(trace.execution);
    if (auto faulty = workload::inject_fault(
            trace, workload::Fault::kFabricatedRead, rng))
      cases.push_back(std::move(*faulty));

    for (const Execution& exec : cases) {
      const AddressIndex index(exec);
      if (index.num_addresses() == 0) continue;
      const auto view = index.view_at(0);
      const auto sat = saturate::saturate(view);
      const auto projection = view.materialize();
      const vmc::VmcInstance instance{projection.execution,
                                      index.entry(0).addr};

      encode::OrderHints hints;
      for (const auto& [a, b] : sat.edges)
        hints.must.emplace_back(sat.writes_local[a], sat.writes_local[b]);

      const encode::VmcEncoding plain = encode::encode_vmc(instance);
      const encode::VmcEncoding hinted = encode::encode_vmc(instance, hints);
      if (plain.trivially_incoherent) {
        EXPECT_TRUE(hinted.trivially_incoherent);
        continue;
      }
      const sat::SolveResult a = sat::solve(plain.cnf);
      const sat::SolveResult b = sat::solve(hinted.cnf);
      ASSERT_NE(a.status, sat::Status::kUnknown);
      EXPECT_EQ(a.status, b.status) << "seed " << seed
                                    << ": order hints changed the verdict";
    }
  }
}

// --- lint: W002 regression, W005, W006 ------------------------------------

TEST(LintW002, ValueInFinalSectionIsExempt) {
  const Execution exec =
      ExecutionBuilder().process(W(0, 5)).final_value(0, 5).build();
  const analysis::AnalysisReport report = analysis::analyze(exec);
  EXPECT_FALSE(has_rule(report, RuleId::kUnreadWrite));
}

TEST(LintW002, NoRecordedFinalLastWriteIsExempt) {
  // No final section: value 2 is produced by the history's last write,
  // so it may legitimately be the end state — W002 must stay quiet for
  // it. Value 1 is unread AND overwritten within its history: fires.
  const Execution exec =
      ExecutionBuilder().process(W(0, 1), W(0, 2)).build();
  const analysis::AnalysisReport report = analysis::analyze(exec);
  EXPECT_EQ(count_rule(report, RuleId::kUnreadWrite), 1u);
  for (const analysis::AddressAnalysis& address : report.addresses)
    for (const analysis::Diagnostic& d : address.diagnostics)
      if (d.rule == RuleId::kUnreadWrite) {
        ASSERT_TRUE(d.location.has_value());
        EXPECT_EQ(*d.location, (OpRef{0, 0}));
      }
}

TEST(LintW002, RecordedFinalMismatchStillFires) {
  const Execution exec = ExecutionBuilder()
                             .process(W(0, 1), W(0, 2))
                             .final_value(0, 2)
                             .build();
  const analysis::AnalysisReport report = analysis::analyze(exec);
  EXPECT_EQ(count_rule(report, RuleId::kUnreadWrite), 1u);
}

TEST(LintW005, UnorderedConcurrentWritesFlagged) {
  // Value 3 written twice defeats write-once; two independent chains
  // stay unordered after saturation.
  const Execution exec = ExecutionBuilder()
                             .process(W(0, 1), W(0, 3))
                             .process(W(0, 2), W(0, 3))
                             .build();
  const analysis::AnalysisReport report = analysis::analyze(exec);
  EXPECT_TRUE(has_rule(report, RuleId::kUnorderedWritePair));
  ASSERT_FALSE(report.addresses.empty());
  EXPECT_TRUE(report.addresses[0].saturation.has_value());
}

TEST(LintW005, ForcedOrderDoesNotFire) {
  const Execution exec = ExecutionBuilder()
                             .process(W(0, 1), W(0, 2), W(0, 2))
                             .build();
  const analysis::AnalysisReport report = analysis::analyze(exec);
  EXPECT_FALSE(has_rule(report, RuleId::kUnorderedWritePair));
}

TEST(LintW006, ShapeValidLogContradictedBySaturation) {
  // The trace forces W(2,1) -> W(2,2) (P0's read of 2 sits after its
  // write of 1), but the log orders them the other way. The log is
  // shape-valid (a permutation respecting program order), so W004 stays
  // quiet and W006 fires.
  const Execution exec = ExecutionBuilder()
                             .process(W(2, 1), R(2, 2))
                             .process(W(2, 2))
                             .build();
  vmc::WriteOrderMap orders;
  orders[2] = {OpRef{1, 0}, OpRef{0, 0}};
  const analysis::AnalysisReport report = analysis::analyze(exec, &orders);
  EXPECT_FALSE(has_rule(report, RuleId::kInconsistentWriteOrderLog));
  EXPECT_TRUE(has_rule(report, RuleId::kSaturationContradictedLog));
}

TEST(LintW006, ConsistentLogDoesNotFire) {
  const Execution exec = ExecutionBuilder()
                             .process(W(2, 1), R(2, 2))
                             .process(W(2, 2))
                             .build();
  vmc::WriteOrderMap orders;
  orders[2] = {OpRef{0, 0}, OpRef{1, 0}};
  const analysis::AnalysisReport report = analysis::analyze(exec, &orders);
  EXPECT_FALSE(has_rule(report, RuleId::kSaturationContradictedLog));
}

}  // namespace
