// Tests for the VSC machinery: exact SC search, VSC-Conflict merge, and
// the VSCC pipeline, including the Section 6.3 phenomenon (a wrong set of
// coherent schedules can fail to merge even when the execution is SC).

#include <gtest/gtest.h>

#include "trace/schedule.hpp"
#include "vmc/checker.hpp"
#include "vsc/conflict.hpp"
#include "vsc/exact.hpp"
#include "vsc/exact_legacy.hpp"
#include "vsc/vscc.hpp"
#include "workload/random.hpp"

namespace vermem::vsc {
namespace {

using vmc::Verdict;

// Classic message-passing violation: coherent per address, not SC.
Execution mp_violation() {
  return ExecutionBuilder()
      .process(W(0, 1), W(1, 1))
      .process(R(1, 1), R(0, 0))
      .build();
}

TEST(ScExact, EmptyExecution) {
  EXPECT_EQ(check_sc_exact(Execution{}).verdict, Verdict::kCoherent);
}

TEST(ScExact, MpViolationIsNotSc) {
  EXPECT_EQ(check_sc_exact(mp_violation()).verdict, Verdict::kIncoherent);
}

TEST(ScExact, MpViolationIsCoherentPerAddress) {
  EXPECT_TRUE(vmc::verify_coherence(mp_violation()).coherent());
}

TEST(ScExact, StoreBufferingIsNotSc) {
  // Dekker/store-buffer litmus: both processes read 0 after writing.
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), R(1, 0))
                        .process(W(1, 1), R(0, 0))
                        .build();
  EXPECT_EQ(check_sc_exact(exec).verdict, Verdict::kIncoherent);
  EXPECT_TRUE(vmc::verify_coherence(exec).coherent());
}

TEST(ScExact, IriwIsNotSc) {
  // Independent reads of independent writes, observed in opposite orders.
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1))
                        .process(W(1, 1))
                        .process(R(0, 1), R(1, 0))
                        .process(R(1, 1), R(0, 0))
                        .build();
  EXPECT_EQ(check_sc_exact(exec).verdict, Verdict::kIncoherent);
  EXPECT_TRUE(vmc::verify_coherence(exec).coherent());
}

TEST(ScExact, WitnessValidatesOnGeneratedTraces) {
  Xoshiro256ss rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    workload::MultiAddressParams params;
    params.num_processes = 2 + rng.below(3);
    params.ops_per_process = 2 + rng.below(8);
    params.num_addresses = 1 + rng.below(3);
    const auto trace = workload::generate_sc(params, rng);
    const auto result = check_sc_exact(trace.execution);
    ASSERT_EQ(result.verdict, Verdict::kCoherent);
    const auto valid = check_sc_schedule(trace.execution, result.witness);
    EXPECT_TRUE(valid.ok) << valid.violation;
  }
}

TEST(ScExact, AblationModesAgree) {
  Xoshiro256ss rng(3);
  workload::MultiAddressParams params;
  params.num_processes = 3;
  params.ops_per_process = 5;
  params.num_addresses = 2;
  for (int trial = 0; trial < 10; ++trial) {
    const auto trace = workload::generate_sc(params, rng);
    const auto baseline = check_sc_exact(trace.execution);
    for (const bool eager : {true, false}) {
      for (const bool memo : {true, false}) {
        ScOptions options;
        options.eager_reads = eager;
        options.memoize = memo;
        EXPECT_EQ(check_sc_exact(trace.execution, options).verdict,
                  baseline.verdict);
      }
    }
  }
}

TEST(ScExact, BudgetYieldsUnknown) {
  Xoshiro256ss rng(5);
  workload::MultiAddressParams params;
  params.num_processes = 6;
  params.ops_per_process = 10;
  const auto trace = workload::generate_sc(params, rng);
  ScOptions options;
  options.max_states = 1;
  EXPECT_EQ(check_sc_exact(trace.execution, options).verdict, Verdict::kUnknown);
}

TEST(ScExact, FinalValuesEnforced) {
  auto exec = ExecutionBuilder().process(W(0, 1)).process(W(0, 2)).build();
  exec.set_final_value(0, 1);
  const auto result = check_sc_exact(exec);
  ASSERT_EQ(result.verdict, Verdict::kCoherent);
  EXPECT_EQ(exec.op(result.witness.back()), W(0, 1));
}

// ---- VSC-Conflict --------------------------------------------------------

TEST(Conflict, MergesConsistentSchedules) {
  Xoshiro256ss rng(7);
  workload::MultiAddressParams params;
  params.num_processes = 4;
  params.ops_per_process = 12;
  params.num_addresses = 3;
  const auto trace = workload::generate_sc(params, rng);

  // Derive per-address schedules from the generating interleaving itself:
  // these are guaranteed to merge.
  CoherentSchedules schedules;
  for (const OpRef ref : trace.witness)
    schedules[trace.execution.op(ref).addr].push_back(ref);

  const auto result = check_sc_conflict(trace.execution, schedules);
  ASSERT_EQ(result.verdict, Verdict::kCoherent) << result.reason();
  const auto valid = check_sc_schedule(trace.execution, result.witness);
  EXPECT_TRUE(valid.ok) << valid.violation;
}

TEST(Conflict, RejectsInvalidSuppliedSchedule) {
  const auto exec = ExecutionBuilder().process(W(0, 1), R(0, 1)).build();
  CoherentSchedules schedules;
  schedules[0] = {{0, 1}, {0, 0}};  // violates program order
  EXPECT_EQ(check_sc_conflict(exec, schedules).verdict, Verdict::kUnknown);
}

TEST(Conflict, RejectsUncoveredOperations) {
  const auto exec = ExecutionBuilder().process(W(0, 1), W(1, 1)).build();
  CoherentSchedules schedules;
  schedules[0] = {{0, 0}};  // address 1 missing
  EXPECT_EQ(check_sc_conflict(exec, schedules).verdict, Verdict::kUnknown);
}

TEST(Conflict, DetectsCrossAddressCycle) {
  // Store-buffer execution *with per-address schedules forced*: merging
  // must fail (the execution itself is not SC).
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), R(1, 0))
                        .process(W(1, 1), R(0, 0))
                        .build();
  // Coherence on each address forces: R(1,0) before W(1,1); R(0,0) before
  // W(0,1).
  CoherentSchedules schedules;
  schedules[0] = {{1, 1}, {0, 0}};
  schedules[1] = {{0, 1}, {1, 0}};
  EXPECT_EQ(check_sc_conflict(exec, schedules).verdict, Verdict::kIncoherent);
}

// ---- VSCC pipeline --------------------------------------------------------

TEST(Vscc, ScTraceVerifiesWithoutFallback) {
  Xoshiro256ss rng(11);
  workload::MultiAddressParams params;
  params.num_processes = 3;
  params.ops_per_process = 8;
  params.num_addresses = 2;
  const auto trace = workload::generate_sc(params, rng);
  const auto report = check_vscc(trace.execution);
  EXPECT_TRUE(report.coherence.coherent());
  EXPECT_EQ(report.sc.verdict, Verdict::kCoherent) << report.sc.reason();
}

TEST(Vscc, IncoherentExecutionShortCircuits) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1))
                        .process(W(0, 2))
                        .process(R(0, 1), R(0, 2))
                        .process(R(0, 2), R(0, 1))
                        .build();
  const auto report = check_vscc(exec);
  EXPECT_EQ(report.coherence.verdict, Verdict::kIncoherent);
  EXPECT_EQ(report.sc.verdict, Verdict::kIncoherent);
  EXPECT_FALSE(report.used_exact_fallback);
}

TEST(Vscc, CoherentButNotScIsRejected) {
  const auto report = check_vscc(mp_violation());
  EXPECT_TRUE(report.coherence.coherent());
  EXPECT_EQ(report.sc.verdict, Verdict::kIncoherent);
}

TEST(Vscc, WriteOrderPathAgrees) {
  Xoshiro256ss rng(13);
  workload::MultiAddressParams params;
  params.num_processes = 4;
  params.ops_per_process = 10;
  params.num_addresses = 3;
  const auto trace = workload::generate_sc(params, rng);
  VsccOptions options;
  options.write_orders = &trace.write_orders;
  const auto report = check_vscc(trace.execution, options);
  EXPECT_TRUE(report.coherence.coherent());
  EXPECT_EQ(report.sc.verdict, Verdict::kCoherent) << report.sc.reason();
}

TEST(Vscc, FallbackRescuesWrongScheduleSets) {
  // Section 6.3: when the conflict merge fails, the exact search may still
  // prove SC. Hunt for a trace where the independently-recomputed
  // coherent schedules fail to merge; regardless of whether we find one,
  // the final verdict must always match the exact checker.
  Xoshiro256ss rng(17);
  int merges_failed = 0;
  for (int trial = 0; trial < 40; ++trial) {
    workload::MultiAddressParams params;
    params.num_processes = 2 + rng.below(3);
    params.ops_per_process = 3 + rng.below(6);
    params.num_addresses = 2 + rng.below(2);
    params.num_values = 2;
    const auto trace = workload::generate_sc(params, rng);
    const auto report = check_vscc(trace.execution);
    EXPECT_EQ(report.sc.verdict, Verdict::kCoherent) << report.sc.reason();
    if (report.used_exact_fallback) ++merges_failed;
  }
  // Not asserted — the count is workload-dependent — but record it so a
  // regression to "always falls back" or "never exercises the merge" is
  // visible in the test log.
  std::cout << "[ info ] conflict merge fell back " << merges_failed
            << "/40 times\n";
}

// ---- Differential: arena/packed-key SC search vs frozen legacy -------

// Same contract as the VMC differential: the rework must preserve the
// exact exploration sequence, so verdicts, witnesses, and every
// non-arena SearchStats counter must be bit-identical to the frozen
// pre-arena implementation.
TEST(ScExactDifferential, MatchesLegacyOnRandomizedTraces) {
  Xoshiro256ss rng(59);
  for (int trial = 0; trial < 25; ++trial) {
    workload::MultiAddressParams params;
    params.num_processes = 2 + rng.below(3);
    params.ops_per_process = 2 + rng.below(6);
    params.num_addresses = 1 + rng.below(3);
    params.num_values = 2 + rng.below(2);
    const auto trace = workload::generate_sc(params, rng);
    // Perturb half the trials: swap two operations in one history so the
    // differential also covers non-SC executions.
    Execution exec = trace.execution;
    if (trial % 2 == 1 && exec.num_processes() > 0) {
      const std::size_t p = rng.below(exec.num_processes());
      if (exec.history(p).size() >= 2) {
        std::vector<Operation> ops(exec.history(p).begin(),
                                   exec.history(p).end());
        const std::size_t i = rng.below(ops.size() - 1);
        std::swap(ops[i], ops[i + 1]);
        ExecutionBuilder builder;
        for (std::size_t q = 0; q < exec.num_processes(); ++q) {
          if (q == p)
            builder.process_ops(ops);
          else
            builder.process_ops(std::vector<Operation>(
                exec.history(q).begin(), exec.history(q).end()));
        }
        for (const auto& [addr, value] : exec.initial_values())
          builder.initial(addr, value);
        exec = builder.build();
      }
    }
    const auto now = check_sc_exact(exec);
    const auto legacy = check_sc_exact_legacy(exec);
    ASSERT_EQ(now.verdict, legacy.verdict) << "trial " << trial;
    EXPECT_EQ(now.witness, legacy.witness);
    EXPECT_EQ(now.stats.states_visited, legacy.stats.states_visited);
    EXPECT_EQ(now.stats.transitions, legacy.stats.transitions);
    EXPECT_EQ(now.stats.max_frontier, legacy.stats.max_frontier);
    EXPECT_EQ(now.stats.prunes, legacy.stats.prunes);
    EXPECT_GE(now.stats.arena_reserved, legacy.stats.arena_reserved);
  }
}

TEST(ScExactDifferential, MatchesLegacyUnderAblatedOptions) {
  Xoshiro256ss rng(83);
  workload::MultiAddressParams params;
  params.num_processes = 3;
  params.ops_per_process = 4;
  params.num_addresses = 2;
  for (int trial = 0; trial < 8; ++trial) {
    const auto trace = workload::generate_sc(params, rng);
    for (const bool eager : {true, false}) {
      for (const bool memo : {true, false}) {
        ScOptions options;
        options.eager_reads = eager;
        options.memoize = memo;
        const auto now = check_sc_exact(trace.execution, options);
        const auto legacy = check_sc_exact_legacy(trace.execution, options);
        ASSERT_EQ(now.verdict, legacy.verdict)
            << "eager=" << eager << " memo=" << memo;
        EXPECT_EQ(now.witness, legacy.witness);
        EXPECT_EQ(now.stats.states_visited, legacy.stats.states_visited);
        EXPECT_EQ(now.stats.transitions, legacy.stats.transitions);
        EXPECT_EQ(now.stats.max_frontier, legacy.stats.max_frontier);
        EXPECT_EQ(now.stats.prunes, legacy.stats.prunes);
      }
    }
  }
}

}  // namespace
}  // namespace vermem::vsc
