// Tests for the persistent verification service and its parts: the
// ThreadPool, the stable trace fingerprint, the LRU result cache, and
// VerificationService end-to-end (verdicts, caching, deadlines,
// cancellation, shutdown). The *Stress tests are the ThreadSanitizer
// targets: they race submit/cancel/shutdown and deadline expiry against
// completion, and must stay TSan-clean.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "certify/check.hpp"
#include "obs/flight.hpp"
#include "reductions/sat_to_vmc.hpp"
#include "sat/gen.hpp"
#include "service/service.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "trace/binary_io.hpp"
#include "trace/fingerprint.hpp"
#include "trace/text_io.hpp"
#include "workload/random.hpp"

namespace {

using namespace vermem;
using service::CheckMode;
using service::VerificationRequest;
using service::VerificationResponse;
using service::VerificationService;

Execution exec_from(std::string_view text) {
  ParseResult parsed = parse_execution(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  return std::move(parsed.execution);
}

constexpr std::string_view kCoherentTrace =
    "init 0 0\ninit 1 0\n"
    "P: W(0,1) R(1,0) W(1,1) R(0,1)\n"
    "P: R(0,0) W(0,2) R(0,2) R(1,1)\n";

constexpr std::string_view kFaultyTrace =
    "init 0 0\n"
    "P: W(0,1) W(0,2)\n"
    "P: R(0,2) R(0,1)\n";

/// Reduction-generated adversarial instance: coherence of this trace
/// decides an UNSAT pigeonhole formula, so the exact checker must
/// exhaust an exponential search — ideal for deadline/cancel tests.
Execution adversarial_trace() {
  return reductions::sat_to_vmc(sat::pigeonhole(5)).instance.execution;
}

VerificationRequest coherence_request(Execution exec) {
  VerificationRequest request;
  request.execution = std::move(exec);
  request.mode = CheckMode::kCoherence;
  return request;
}

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 256; ++i)
      pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.shutdown();
    EXPECT_EQ(ran.load(), 256);
  }
}

TEST(ThreadPool, PostAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.post([] {}), std::runtime_error);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ConcurrentShutdownIsSafe) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i)
    pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  std::vector<std::thread> closers;
  for (int t = 0; t < 4; ++t)
    closers.emplace_back([&pool] { pool.shutdown(); });
  for (auto& closer : closers) closer.join();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolStress, PostersRaceShutdown) {
  ThreadPool pool(3);
  std::atomic<int> accepted{0}, rejected{0};
  std::vector<std::thread> posters;
  for (int t = 0; t < 4; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        try {
          pool.post([] {});
          accepted.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::runtime_error&) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  pool.shutdown();
  for (auto& poster : posters) poster.join();
  EXPECT_EQ(accepted.load() + rejected.load(), 800);
}

// --- Trace fingerprint ---------------------------------------------------

TEST(Fingerprint, StableAcrossReparses) {
  const Execution a = exec_from(kCoherentTrace);
  const Execution b = exec_from(kCoherentTrace);
  EXPECT_EQ(fingerprint_execution(a), fingerprint_execution(b));
}

TEST(Fingerprint, SensitiveToValuesAndStructure) {
  const auto base = fingerprint_execution(exec_from(kCoherentTrace));
  EXPECT_NE(base, fingerprint_execution(exec_from(kFaultyTrace)));
  // One changed data value flips the hash.
  const Execution tweaked = exec_from(
      "init 0 0\ninit 1 0\n"
      "P: W(0,1) R(1,0) W(1,1) R(0,1)\n"
      "P: R(0,0) W(0,3) R(0,3) R(1,1)\n");
  EXPECT_NE(base, fingerprint_execution(tweaked));
}

TEST(Fingerprint, EmptyWriteOrderMatchesAbsent) {
  const Execution exec = exec_from(kCoherentTrace);
  const std::unordered_map<Addr, std::vector<OpRef>> empty;
  EXPECT_EQ(fingerprint_execution(exec), fingerprint_execution(exec, empty));
}

TEST(Fingerprint, WriteOrdersFold) {
  const Execution exec = exec_from(kCoherentTrace);
  std::unordered_map<Addr, std::vector<OpRef>> ab{{0, {{0, 0}, {1, 1}}}};
  std::unordered_map<Addr, std::vector<OpRef>> ba{{0, {{1, 1}, {0, 0}}}};
  EXPECT_NE(fingerprint_execution(exec, ab), fingerprint_execution(exec, ba));
  EXPECT_NE(fingerprint_execution(exec, ab), fingerprint_execution(exec));
}

// --- Result cache --------------------------------------------------------

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  service::ResultCache cache(2);
  cache.insert(1, {vmc::Verdict::kCoherent, "one", 1});
  cache.insert(2, {vmc::Verdict::kCoherent, "two", 1});
  ASSERT_TRUE(cache.lookup(1).has_value());  // refresh 1: now 2 is LRU
  cache.insert(3, {vmc::Verdict::kIncoherent, "three", 1});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(2).has_value());
  ASSERT_TRUE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.lookup(3)->verdict, vmc::Verdict::kIncoherent);
}

TEST(ResultCache, InsertRefreshesExistingKey) {
  service::ResultCache cache(2);
  cache.insert(1, {vmc::Verdict::kCoherent, "old", 1});
  cache.insert(1, {vmc::Verdict::kIncoherent, "new", 2});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(1)->reason, "new");
}

TEST(ResultCache, ZeroCapacityDisables) {
  service::ResultCache cache(0);
  cache.insert(1, {vmc::Verdict::kCoherent, "", 1});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(1).has_value());
}

// --- VerificationService -------------------------------------------------

TEST(Service, VerifiesCoherentAndFaultyTraces) {
  service::ServiceOptions options;
  options.workers = 2;
  VerificationService svc(options);
  auto good = svc.submit(coherence_request(exec_from(kCoherentTrace)));
  auto bad = svc.submit(coherence_request(exec_from(kFaultyTrace)));
  const VerificationResponse good_response = good.response.get();
  const VerificationResponse bad_response = bad.response.get();
  EXPECT_EQ(good_response.verdict, vmc::Verdict::kCoherent);
  EXPECT_FALSE(good_response.cache_hit);
  EXPECT_EQ(bad_response.verdict, vmc::Verdict::kIncoherent);
  EXPECT_FALSE(bad_response.reason.empty());
  EXPECT_NE(good_response.fingerprint, bad_response.fingerprint);
}

TEST(Service, RepeatedTraceHitsCache) {
  service::ServiceOptions options;
  options.workers = 1;
  VerificationService svc(options);
  const VerificationResponse first =
      svc.submit(coherence_request(exec_from(kFaultyTrace))).response.get();
  const VerificationResponse second =
      svc.submit(coherence_request(exec_from(kFaultyTrace))).response.get();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.verdict, vmc::Verdict::kIncoherent);
  EXPECT_EQ(second.reason, first.reason);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  const service::ServiceStats stats = svc.stats();
  EXPECT_GT(stats.cache_hit_rate(), 0.0);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(Service, BypassCacheSkipsLookupAndFingerprint) {
  VerificationService svc;
  VerificationRequest request = coherence_request(exec_from(kCoherentTrace));
  request.bypass_cache = true;
  const VerificationResponse a = svc.submit(std::move(request)).response.get();
  VerificationRequest again = coherence_request(exec_from(kCoherentTrace));
  again.bypass_cache = true;
  const VerificationResponse b = svc.submit(std::move(again)).response.get();
  EXPECT_FALSE(b.cache_hit);
  EXPECT_EQ(a.fingerprint, 0u);  // uncacheable requests skip hashing
  EXPECT_EQ(svc.stats().cache_entries, 0u);
}

TEST(Service, CertifyAttachesCheckableCertificates) {
  service::ServiceOptions options;
  options.workers = 1;
  VerificationService svc(options);

  // Coherence mode: one certificate per address, each re-validated by the
  // independent checker against the raw trace. With the default
  // drop_witnesses the report's schedules are stripped, but the
  // certificates keep theirs.
  VerificationRequest request = coherence_request(exec_from(kFaultyTrace));
  request.certify = true;
  const VerificationResponse bad = svc.submit(std::move(request)).response.get();
  const Execution faulty = exec_from(kFaultyTrace);
  EXPECT_EQ(bad.verdict, vmc::Verdict::kIncoherent);
  ASSERT_FALSE(bad.certificates.empty());
  for (const auto& cert : bad.certificates) {
    const certify::CheckOutcome outcome = certify::check(faulty, cert);
    EXPECT_TRUE(outcome.ok) << outcome.violation;
  }
  for (const auto& address : bad.coherence.addresses)
    EXPECT_TRUE(address.result.witness.empty());

  // Vscc mode appends an execution-scope SC certificate.
  VerificationRequest vscc = coherence_request(exec_from(kCoherentTrace));
  vscc.mode = CheckMode::kVscc;
  vscc.certify = true;
  const VerificationResponse sc = svc.submit(std::move(vscc)).response.get();
  const Execution coherent = exec_from(kCoherentTrace);
  ASSERT_FALSE(sc.certificates.empty());
  EXPECT_EQ(sc.certificates.back().scope, certify::Scope::kExecution);
  for (const auto& cert : sc.certificates) {
    const certify::CheckOutcome outcome = certify::check(coherent, cert);
    EXPECT_TRUE(outcome.ok) << outcome.violation;
  }

  // Certified requests bypass the cache entirely.
  EXPECT_EQ(svc.stats().cache_entries, 0u);
}

TEST(Service, DeadlineReturnsUnknownWithoutStallingOthers) {
  service::ServiceOptions options;
  options.workers = 2;
  VerificationService svc(options);

  VerificationRequest hard = coherence_request(adversarial_trace());
  hard.deadline = std::chrono::milliseconds(50);
  auto hard_ticket = svc.submit(std::move(hard));

  std::vector<VerificationService::Ticket> easy;
  for (int i = 0; i < 8; ++i) {
    VerificationRequest request = coherence_request(exec_from(kCoherentTrace));
    request.bypass_cache = true;  // make each of the 8 do real work
    easy.push_back(svc.submit(std::move(request)));
  }
  for (auto& ticket : easy)
    EXPECT_EQ(ticket.response.get().verdict, vmc::Verdict::kCoherent);

  const VerificationResponse hard_response = hard_ticket.response.get();
  EXPECT_EQ(hard_response.verdict, vmc::Verdict::kUnknown);
  EXPECT_TRUE(hard_response.timed_out);
  EXPECT_FALSE(hard_response.reason.empty());
}

TEST(Service, CancelResolvesInFlightRequest) {
  service::ServiceOptions options;
  options.workers = 1;
  VerificationService svc(options);
  auto ticket = svc.submit(coherence_request(adversarial_trace()));
  // Let it reach the exact search, then withdraw it.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ticket.cancel();
  const VerificationResponse response = ticket.response.get();
  EXPECT_EQ(response.verdict, vmc::Verdict::kUnknown);
  EXPECT_TRUE(response.cancelled);
}

TEST(Service, ShutdownResolvesEveryFuture) {
  service::ServiceOptions options;
  options.workers = 1;
  VerificationService svc(options);
  std::vector<VerificationService::Ticket> tickets;
  tickets.push_back(svc.submit(coherence_request(adversarial_trace())));
  for (int i = 0; i < 4; ++i) {
    VerificationRequest request = coherence_request(exec_from(kCoherentTrace));
    request.bypass_cache = true;
    tickets.push_back(svc.submit(std::move(request)));
  }
  svc.shutdown();
  for (auto& ticket : tickets) {
    const VerificationResponse response = ticket.response.get();
    if (response.verdict == vmc::Verdict::kUnknown) {
      EXPECT_TRUE(response.cancelled || response.timed_out);
    }
  }
  // Post-shutdown submissions resolve immediately as cancelled.
  const VerificationResponse late =
      svc.submit(coherence_request(exec_from(kCoherentTrace))).response.get();
  EXPECT_TRUE(late.cancelled);
}

TEST(Service, WriteOrderRequestsUsePolynomialPath) {
  VerificationService svc;
  VerificationRequest request = coherence_request(exec_from(
      "init 0 0\n"
      "P: W(0,1) R(0,2)\n"
      "P: W(0,2)\n"));
  vmc::WriteOrderMap orders;
  orders[0] = {{0, 0}, {1, 0}};  // W(0,1) then W(0,2)
  request.write_orders = orders;
  const VerificationResponse response =
      svc.submit(std::move(request)).response.get();
  EXPECT_EQ(response.verdict, vmc::Verdict::kCoherent);

  // The reversed serialization makes P0's R(0,2) unservable.
  VerificationRequest reversed = coherence_request(exec_from(
      "init 0 0\n"
      "P: W(0,1) R(0,2)\n"
      "P: W(0,2)\n"));
  vmc::WriteOrderMap reversed_orders;
  reversed_orders[0] = {{1, 0}, {0, 0}};
  reversed.write_orders = reversed_orders;
  const VerificationResponse reversed_response =
      svc.submit(std::move(reversed)).response.get();
  EXPECT_EQ(reversed_response.verdict, vmc::Verdict::kIncoherent);
}

TEST(Service, AnalyzeFlagEmbedsReportAndStatsCountRouting) {
  VerificationService svc;
  // Three writes of value 1 (W001) and an adjacent R;W pair (W003).
  VerificationRequest request = coherence_request(exec_from(
      "init 0 0\n"
      "P: W(0,1) R(0,1) W(0,1) W(0,1)\n"));
  request.analyze = true;
  const VerificationResponse response =
      svc.submit(std::move(request)).response.get();
  EXPECT_EQ(response.verdict, vmc::Verdict::kCoherent);
  ASSERT_TRUE(response.analyzed);
  ASSERT_EQ(response.analysis.addresses.size(), 1u);
  EXPECT_TRUE(response.analysis.has_warnings());
  // Analyze responses are not cached: a repeat is a fresh verification.
  VerificationRequest again = coherence_request(exec_from(
      "init 0 0\n"
      "P: W(0,1) R(0,1) W(0,1) W(0,1)\n"));
  again.analyze = true;
  EXPECT_FALSE(svc.submit(std::move(again)).response.get().cache_hit);

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.poly_routed + stats.exact_routed, 2u);
  EXPECT_GT(stats.lint_warnings, 0u);
  std::uint64_t classified = 0;
  for (const std::uint64_t count : stats.fragments) classified += count;
  EXPECT_EQ(classified, 2u);
}

TEST(Service, ConsistencyModeChecksModels) {
  VerificationService svc;
  // Dekker/SB: coherent per address, but not sequentially consistent.
  constexpr std::string_view kStoreBuffer =
      "init 0 0\ninit 1 0\n"
      "P: W(0,1) R(1,0)\n"
      "P: W(1,1) R(0,0)\n";
  VerificationRequest sc = coherence_request(exec_from(kStoreBuffer));
  sc.mode = CheckMode::kConsistency;
  sc.model = models::Model::kSc;
  EXPECT_EQ(svc.submit(std::move(sc)).response.get().verdict,
            vmc::Verdict::kIncoherent);

  VerificationRequest tso = coherence_request(exec_from(kStoreBuffer));
  tso.mode = CheckMode::kConsistency;
  tso.model = models::Model::kTso;
  EXPECT_EQ(svc.submit(std::move(tso)).response.get().verdict,
            vmc::Verdict::kCoherent);
}

TEST(Service, VsccModeReportsSequentialConsistency) {
  VerificationService svc;
  VerificationRequest request = coherence_request(exec_from(kCoherentTrace));
  request.mode = CheckMode::kVscc;
  const VerificationResponse response =
      svc.submit(std::move(request)).response.get();
  EXPECT_EQ(response.verdict, vmc::Verdict::kCoherent);
  EXPECT_FALSE(response.coherence.addresses.empty());
}

TEST(Service, StatsTrackVerdictsAndLatency) {
  VerificationService svc;
  (void)svc.submit(coherence_request(exec_from(kCoherentTrace))).response.get();
  (void)svc.submit(coherence_request(exec_from(kFaultyTrace))).response.get();
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.coherent, 1u);
  EXPECT_EQ(stats.incoherent, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_GT(stats.p50_micros, 0.0);
  EXPECT_GE(stats.p99_micros, stats.p50_micros);
  EXPECT_EQ(stats.latency_nanos.count, 2u);
}

TEST(Service, StatsExportPrometheusText) {
  VerificationService svc;
  (void)svc.submit(coherence_request(exec_from(kCoherentTrace))).response.get();
  (void)svc.submit(coherence_request(exec_from(kFaultyTrace))).response.get();
  const std::string text = svc.stats().to_prometheus();
  EXPECT_NE(text.find("# TYPE vermem_service_submitted_total counter\n"
                      "vermem_service_submitted_total 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("vermem_service_verdicts_total{verdict=\"coherent\"} 1"),
            std::string::npos);
  EXPECT_NE(
      text.find("vermem_service_verdicts_total{verdict=\"incoherent\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE vermem_service_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("vermem_service_stats_latency_nanos_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("vermem_service_stats_latency_nanos_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
}

TEST(Service, StatsBreakOutPerRequestKind) {
  VerificationService svc;
  (void)svc.submit(coherence_request(exec_from(kCoherentTrace))).response.get();
  VerificationRequest vscc = coherence_request(exec_from(kCoherentTrace));
  vscc.mode = CheckMode::kVscc;
  (void)svc.submit(std::move(vscc)).response.get();

  const service::ServiceStats stats = svc.stats();
  const auto& coherence =
      stats.kinds[static_cast<std::size_t>(obs::RequestKind::kCoherence)];
  const auto& vscc_kind =
      stats.kinds[static_cast<std::size_t>(obs::RequestKind::kVscc)];
  EXPECT_EQ(coherence.total, 1u);
  EXPECT_EQ(coherence.latency_nanos.count, 1u);
  EXPECT_GT(coherence.p50_micros, 0.0);
  EXPECT_GE(coherence.p99_micros, coherence.p50_micros);
  EXPECT_EQ(vscc_kind.total, 1u);
  // The aggregate fields keep their meaning: both requests counted.
  EXPECT_EQ(stats.latency_nanos.count, 2u);
  // The SLO tracker saw the same traffic, kind by kind.
  EXPECT_EQ(
      stats.slo.kinds[static_cast<std::size_t>(obs::RequestKind::kCoherence)]
          .total,
      1u);
  EXPECT_EQ(stats.slo.kinds[static_cast<std::size_t>(obs::RequestKind::kVscc)]
                .total,
            1u);

  const std::string text = stats.to_prometheus();
  EXPECT_NE(text.find("vermem_service_kind_latency_nanos_bucket{"
                      "kind=\"coherence\""),
            std::string::npos);
  EXPECT_NE(text.find("vermem_slo_error_budget_remaining{kind=\"coherence\"}"),
            std::string::npos);
}

// --- flight recorder at the service level --------------------------------

/// Enables the process-global flight recorder for one test; restores the
/// previous switch and policy and clears retained records on exit.
class FlightGuard {
 public:
  explicit FlightGuard(const obs::FlightPolicy& policy)
      : was_(obs::flight_enabled()), policy_was_(obs::flight_policy()) {
    obs::reset_flight();
    obs::set_flight_enabled(true);
    obs::set_flight_policy(policy);
  }
  ~FlightGuard() {
    obs::reset_flight();
    obs::set_flight_policy(policy_was_);
    obs::set_flight_enabled(was_);
  }

 private:
  bool was_;
  obs::FlightPolicy policy_was_;
};

TEST(Service, SlowPolicyCapturesRequestWithFlightId) {
  obs::FlightPolicy policy;
  policy.latency_threshold_nanos = 1;  // every request counts as slow
  FlightGuard guard(policy);
  VerificationService svc;
  const VerificationResponse response =
      svc.submit(coherence_request(exec_from(kCoherentTrace))).response.get();
  EXPECT_EQ(response.verdict, vmc::Verdict::kCoherent);
  ASSERT_NE(response.flight_id, 0u);
  obs::FlightRecord record;
  ASSERT_TRUE(obs::flight_record_for(response.flight_id, &record));
  EXPECT_STREQ(record.trigger, "slow");
  EXPECT_STREQ(record.kind, "coherence");
  EXPECT_STREQ(record.verdict, "coherent");
  EXPECT_GE(record.latency_nanos, 1u);
  // The captured span tree explains where the time went.
  EXPECT_GT(record.num_spans, 0u);
  EXPECT_GE(svc.stats().flight_retained_total, 1u);
}

TEST(Service, BudgetUnknownLeavesRetrievableFlightRecord) {
  obs::FlightPolicy policy;
  policy.latency_threshold_nanos = 0;  // only the verdict triggers armed
  FlightGuard guard(policy);
  VerificationService svc;
  VerificationRequest request = coherence_request(adversarial_trace());
  request.budget.max_states = 1;
  const VerificationResponse response =
      svc.submit(std::move(request)).response.get();
  EXPECT_EQ(response.verdict, vmc::Verdict::kUnknown);
  ASSERT_NE(response.flight_id, 0u);
  obs::FlightRecord record;
  ASSERT_TRUE(obs::flight_record_for(response.flight_id, &record));
  EXPECT_STREQ(record.trigger, "unknown");
  EXPECT_STREQ(record.verdict, "unknown");
  // The record is self-explaining: the router's tier transitions were
  // captured and the solver effort tallies came across.
  bool saw_tier = false;
  for (std::uint32_t i = 0; i < record.num_events; ++i)
    if (record.events[i].kind == obs::FlightEventKind::kTierEnter)
      saw_tier = true;
  EXPECT_TRUE(saw_tier);
  EXPECT_GT(record.effort.states, 0u);
}

TEST(Service, StreamRequestsCarryFlightRecords) {
  obs::FlightPolicy policy;
  policy.latency_threshold_nanos = 1;
  FlightGuard guard(policy);
  VerificationService svc;
  const std::string bytes = encode_binary(exec_from(kCoherentTrace));
  std::istringstream in(bytes);
  service::StreamRequest request;
  request.tag = "stream flight";
  const VerificationResponse response = svc.verify_stream(in, request);
  EXPECT_EQ(response.verdict, vmc::Verdict::kCoherent);
  ASSERT_NE(response.flight_id, 0u);
  obs::FlightRecord record;
  ASSERT_TRUE(obs::flight_record_for(response.flight_id, &record));
  EXPECT_STREQ(record.kind, "stream");
  EXPECT_STREQ(record.tag, "stream flight");
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(
      stats.kinds[static_cast<std::size_t>(obs::RequestKind::kStream)].total,
      1u);
  EXPECT_EQ(
      stats.slo.kinds[static_cast<std::size_t>(obs::RequestKind::kStream)]
          .total,
      1u);
}

TEST(Service, ShedStreamRequestIsCapturedAsShed) {
  obs::FlightPolicy policy;
  policy.latency_threshold_nanos = 0;  // only the shed trigger matters
  FlightGuard guard(policy);
  VerificationService svc;

  Xoshiro256ss rng(17);
  workload::MultiAddressParams params;
  params.num_processes = 4;
  params.ops_per_process = 256;
  params.num_addresses = 8;
  const workload::GeneratedMultiTrace trace = workload::generate_sc(params, rng);
  const std::string bytes = encode_binary(trace.execution);
  std::istringstream in(bytes);

  service::StreamRequest request;
  request.options.shards = 2;
  request.options.queue_blocks = 2;  // smallest ring: maximize pressure
  request.options.backpressure = stream::BackpressurePolicy::kShed;
  request.tag = "shed stream";
  const VerificationResponse response = svc.verify_stream(in, request);

  // Shedding depends on shard scheduling, so assert the implication in
  // both directions: a shed run is captured as such, a clean run is not
  // captured at all (no other trigger is armed).
  const std::uint64_t shed = svc.stats().stream_shed;
  if (shed > 0) {
    ASSERT_NE(response.flight_id, 0u);
    obs::FlightRecord record;
    ASSERT_TRUE(obs::flight_record_for(response.flight_id, &record));
    EXPECT_STREQ(record.trigger, "shed");
    EXPECT_TRUE(record.shed);
    EXPECT_STREQ(record.kind, "stream");
  } else {
    EXPECT_EQ(response.flight_id, 0u);
  }
}

/// The TSan centerpiece: submitters, a canceller, and shutdown all race;
/// deadlines race completion. Every future must still resolve.
TEST(ServiceStress, ConcurrentSubmitCancelShutdown) {
  service::ServiceOptions options;
  options.workers = 2;
  options.max_batch = 4;
  options.cache_capacity = 32;
  VerificationService svc(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::mutex tickets_mutex;
  std::vector<VerificationService::Ticket> tickets;
  tickets.reserve(kThreads * kPerThread);
  std::atomic<bool> stop_cancelling{false};

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        VerificationRequest request = coherence_request(
            exec_from((t + i) % 2 == 0 ? kCoherentTrace : kFaultyTrace));
        if (i % 3 == 0) request.bypass_cache = true;
        if (i % 5 == 0) request.deadline = std::chrono::milliseconds(1);
        auto ticket = svc.submit(std::move(request));
        std::lock_guard<std::mutex> lock(tickets_mutex);
        tickets.push_back(std::move(ticket));
      }
    });
  }
  std::thread canceller([&] {
    while (!stop_cancelling.load(std::memory_order_acquire)) {
      {
        std::lock_guard<std::mutex> lock(tickets_mutex);
        for (std::size_t i = 0; i < tickets.size(); i += 7)
          tickets[i].cancel();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  svc.shutdown();  // races the submitters: late submits resolve cancelled
  for (auto& submitter : submitters) submitter.join();
  stop_cancelling.store(true, std::memory_order_release);
  canceller.join();

  ASSERT_EQ(tickets.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (auto& ticket : tickets) {
    ASSERT_TRUE(ticket.response.valid());
    const VerificationResponse response = ticket.response.get();
    if (response.verdict == vmc::Verdict::kUnknown) {
      EXPECT_TRUE(response.cancelled || response.timed_out ||
                  !response.reason.empty());
    }
  }
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.completed, stats.submitted);
}

}  // namespace
