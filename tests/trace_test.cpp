// Unit tests for the trace model: operations, executions, projections,
// schedule validators, and the text format.

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "trace/address_index.hpp"
#include "trace/execution.hpp"
#include "trace/schedule.hpp"
#include "trace/stats.hpp"
#include "trace/text_io.hpp"

namespace vermem {
namespace {

TEST(Operation, Predicates) {
  EXPECT_TRUE(R(0, 1).reads_memory());
  EXPECT_FALSE(R(0, 1).writes_memory());
  EXPECT_TRUE(W(0, 1).writes_memory());
  EXPECT_FALSE(W(0, 1).reads_memory());
  EXPECT_TRUE(RW(0, 1, 2).reads_memory());
  EXPECT_TRUE(RW(0, 1, 2).writes_memory());
  EXPECT_TRUE(Acq(0).is_sync());
  EXPECT_TRUE(Rel(0).is_sync());
  EXPECT_FALSE(W(0, 1).is_sync());
}

TEST(Operation, ToString) {
  EXPECT_EQ(to_string(R(3, -1)), "R(3,-1)");
  EXPECT_EQ(to_string(W(0, 7)), "W(0,7)");
  EXPECT_EQ(to_string(RW(2, 1, 9)), "RW(2,1,9)");
  EXPECT_EQ(to_string(Acq(5)), "Acq(5)");
  EXPECT_EQ(to_string(Rel(5)), "Rel(5)");
}

TEST(Execution, BuilderAndAccessors) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), R(0, 2))
                        .process(W(0, 2))
                        .initial(0, 5)
                        .final_value(0, 2)
                        .build();
  EXPECT_EQ(exec.num_processes(), 2u);
  EXPECT_EQ(exec.num_operations(), 3u);
  EXPECT_EQ(exec.initial_value(0), 5);
  EXPECT_EQ(exec.initial_value(99), 0);  // default
  EXPECT_EQ(exec.final_value(0), std::optional<Value>(2));
  EXPECT_FALSE(exec.final_value(1).has_value());
  EXPECT_EQ(exec.op({0, 1}), R(0, 2));
}

TEST(Execution, AddressesSortedUnique) {
  const auto exec = ExecutionBuilder()
                        .process(W(3, 1), R(1, 0), Acq(7))
                        .process(W(1, 2))
                        .build();
  EXPECT_EQ(exec.addresses(), (std::vector<Addr>{1, 3}));  // sync addr excluded
}

TEST(Execution, ProjectionKeepsProgramOrderAndOrigin) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(1, 9), R(0, 2))
                        .process(W(1, 3))
                        .initial(0, 4)
                        .final_value(0, 2)
                        .build();
  const auto proj = exec.project(0);
  // History 1 touches only address 1 and is dropped.
  ASSERT_EQ(proj.execution.num_processes(), 1u);
  EXPECT_EQ(proj.execution.history(0).ops(),
            (std::vector<Operation>{W(0, 1), R(0, 2)}));
  EXPECT_EQ(proj.execution.initial_value(0), 4);
  EXPECT_EQ(proj.execution.final_value(0), std::optional<Value>(2));
  ASSERT_EQ(proj.origin.size(), 1u);
  EXPECT_EQ(proj.origin[0][1], (OpRef{0, 2}));
}

// --- Address index & projected views ----------------------------------

TEST(AddressIndex, StatsAndSortedAddresses) {
  const auto exec = ExecutionBuilder()
                        .process(W(3, 1), R(1, 0), Acq(7), RW(1, 0, 5))
                        .process(W(1, 2), RW(9, 0, 1))
                        .build();
  const AddressIndex index(exec);
  EXPECT_EQ(std::vector<Addr>(index.addresses().begin(), index.addresses().end()),
            (std::vector<Addr>{1, 3, 9}));  // sorted, sync addr 7 excluded

  const AddressEntry* one = index.find(1);
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(one->op_count, 3u);
  EXPECT_EQ(one->write_count, 2u);  // RW(1,0,5) and W(1,2)
  EXPECT_EQ(one->process_count, 2u);
  EXPECT_FALSE(one->rmw_only);

  const AddressEntry* nine = index.find(9);
  ASSERT_NE(nine, nullptr);
  EXPECT_EQ(nine->op_count, 1u);
  EXPECT_EQ(nine->process_count, 1u);
  EXPECT_TRUE(nine->rmw_only);

  EXPECT_EQ(index.find(7), nullptr);   // sync-only address is not indexed
  EXPECT_EQ(index.find(42), nullptr);  // untouched address
  EXPECT_TRUE(index.refs(42).empty());
}

TEST(AddressIndex, RefsGroupedByProcessInProgramOrder) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(5, 9), R(0, 2))
                        .process(R(0, 1))
                        .build();
  const AddressIndex index(exec);
  const auto refs = index.refs(0);
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0], (OpRef{0, 0}));
  EXPECT_EQ(refs[1], (OpRef{0, 2}));
  EXPECT_EQ(refs[2], (OpRef{1, 0}));
}

TEST(ProjectedView, MatchesLegacyProject) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(1, 9), R(0, 2))
                        .process(W(1, 3))
                        .initial(0, 4)
                        .final_value(0, 2)
                        .build();
  const AddressIndex index(exec);
  for (const Addr addr : index.addresses()) {
    const auto legacy = exec.project(addr);
    const auto indexed = index.view(addr).materialize();
    EXPECT_EQ(indexed.execution, legacy.execution) << "addr " << addr;
    EXPECT_EQ(indexed.origin, legacy.origin) << "addr " << addr;
  }
}

TEST(ProjectedView, HistoryAccessorsAndCoordinateMaps) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(1, 9), R(0, 2))
                        .process(W(1, 3))
                        .process(R(0, 1))
                        .build();
  const AddressIndex index(exec);
  const ProjectedView view = index.view(0);
  ASSERT_EQ(view.num_histories(), 2u);  // history 1 (only addr 1) dropped
  EXPECT_EQ(view.history_process(0), 0u);
  EXPECT_EQ(view.history_process(1), 2u);
  EXPECT_EQ(view.num_ops(), 3u);
  EXPECT_EQ(view.history_refs(0).size(), 2u);

  // Original -> projected -> original round-trips; off-address refs miss.
  const OpRef original{0, 2};  // R(0,2), second op on addr 0 of process 0
  const auto projected = view.projected_of(original);
  ASSERT_TRUE(projected.has_value());
  EXPECT_EQ(*projected, (OpRef{0, 1}));
  EXPECT_EQ(view.original_of(*projected), original);
  EXPECT_FALSE(view.projected_of(OpRef{0, 1}).has_value());  // W(1,9)
  EXPECT_FALSE(view.projected_of(OpRef{1, 0}).has_value());  // W(1,3)
}

TEST(AddressIndex, EmptyExecution) {
  const AddressIndex index(Execution{});
  EXPECT_EQ(index.num_addresses(), 0u);
  EXPECT_TRUE(index.addresses().empty());
}

// --- Coherent-schedule validator -------------------------------------

TEST(CoherentCheck, AcceptsValidInterleaving) {
  const auto exec =
      ExecutionBuilder().process(W(0, 1), R(0, 2)).process(W(0, 2)).build();
  const Schedule s{{0, 0}, {1, 0}, {0, 1}};
  EXPECT_TRUE(check_coherent_schedule(exec, 0, s).ok);
}

TEST(CoherentCheck, RejectsWrongReadValue) {
  const auto exec =
      ExecutionBuilder().process(W(0, 1), R(0, 2)).process(W(0, 2)).build();
  const Schedule s{{0, 0}, {0, 1}, {1, 0}};  // read sees 1, claims 2
  const auto check = check_coherent_schedule(exec, 0, s);
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.at, std::optional<std::size_t>(1));
}

TEST(CoherentCheck, ReadsInitialValueBeforeAnyWrite) {
  const auto exec =
      ExecutionBuilder().process(R(0, 7), W(0, 1)).initial(0, 7).build();
  EXPECT_TRUE(check_coherent_schedule(exec, 0, {{0, 0}, {0, 1}}).ok);
}

TEST(CoherentCheck, RejectsProgramOrderViolation) {
  const auto exec = ExecutionBuilder().process(W(0, 1), W(0, 2)).build();
  const auto check = check_coherent_schedule(exec, 0, {{0, 1}, {0, 0}});
  EXPECT_FALSE(check.ok);
}

TEST(CoherentCheck, RejectsMissingOperation) {
  const auto exec = ExecutionBuilder().process(W(0, 1), W(0, 2)).build();
  EXPECT_FALSE(check_coherent_schedule(exec, 0, {{0, 0}}).ok);
}

TEST(CoherentCheck, RejectsDuplicatedOperation) {
  const auto exec = ExecutionBuilder().process(W(0, 1)).build();
  EXPECT_FALSE(check_coherent_schedule(exec, 0, {{0, 0}, {0, 0}}).ok);
}

TEST(CoherentCheck, RejectsForeignAddressOps) {
  const auto exec = ExecutionBuilder().process(W(0, 1), W(1, 2)).build();
  EXPECT_FALSE(check_coherent_schedule(exec, 0, {{0, 0}, {0, 1}}).ok);
}

TEST(CoherentCheck, EnforcesFinalValue) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(0, 2))
                        .final_value(0, 1)
                        .build();
  EXPECT_FALSE(check_coherent_schedule(exec, 0, {{0, 0}, {0, 1}}).ok);
}

TEST(CoherentCheck, FinalValueWithNoWritesMustMatchInitial) {
  const auto exec =
      ExecutionBuilder().process(R(0, 3)).initial(0, 3).final_value(0, 3).build();
  EXPECT_TRUE(check_coherent_schedule(exec, 0, {{0, 0}}).ok);
  const auto exec2 =
      ExecutionBuilder().process(R(0, 3)).initial(0, 3).final_value(0, 4).build();
  EXPECT_FALSE(check_coherent_schedule(exec2, 0, {{0, 0}}).ok);
}

TEST(CoherentCheck, RmwActsAtomically) {
  const auto exec = ExecutionBuilder()
                        .process(RW(0, 0, 1))
                        .process(RW(0, 1, 2))
                        .build();
  EXPECT_TRUE(check_coherent_schedule(exec, 0, {{0, 0}, {1, 0}}).ok);
  EXPECT_FALSE(check_coherent_schedule(exec, 0, {{1, 0}, {0, 0}}).ok);
}

// --- SC validator ------------------------------------------------------

TEST(ScCheck, AcceptsCrossAddressInterleaving) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(1, 1))
                        .process(R(1, 1), R(0, 1))
                        .build();
  EXPECT_TRUE(check_sc_schedule(exec, {{0, 0}, {0, 1}, {1, 0}, {1, 1}}).ok);
}

TEST(ScCheck, RejectsMpViolation) {
  // Message-passing litmus: flag seen set but data read stale.
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(1, 1))
                        .process(R(1, 1), R(0, 0))
                        .build();
  // No schedule makes this SC; every interleaving check must fail.
  const Schedule tries[] = {
      {{0, 0}, {0, 1}, {1, 0}, {1, 1}},
      {{0, 0}, {1, 0}, {0, 1}, {1, 1}},
  };
  for (const auto& s : tries) EXPECT_FALSE(check_sc_schedule(exec, s).ok);
}

TEST(ScCheck, SyncOpsAreOrderOnly) {
  const auto exec = ExecutionBuilder()
                        .process(Acq(9), W(0, 1), Rel(9))
                        .process(Acq(9), R(0, 1), Rel(9))
                        .build();
  EXPECT_TRUE(
      check_sc_schedule(exec, {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}).ok);
}

TEST(ScCheck, ChecksFinalValuesPerAddress) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1))
                        .process(W(0, 2))
                        .final_value(0, 1)
                        .build();
  EXPECT_FALSE(check_sc_schedule(exec, {{0, 0}, {1, 0}}).ok);
  EXPECT_TRUE(check_sc_schedule(exec, {{1, 0}, {0, 0}}).ok);
}

TEST(ScheduleToString, RendersRefs) {
  const auto exec = ExecutionBuilder().process(W(0, 1)).build();
  EXPECT_EQ(to_string(exec, {{0, 0}}), "P0:W(0,1)");
}

// --- Text I/O ----------------------------------------------------------

TEST(TextIo, ParsesOperations) {
  EXPECT_EQ(parse_operation("R(1,2)"), std::optional<Operation>(R(1, 2)));
  EXPECT_EQ(parse_operation("W(0,-3)"), std::optional<Operation>(W(0, -3)));
  EXPECT_EQ(parse_operation("RW(7,1,2)"), std::optional<Operation>(RW(7, 1, 2)));
  EXPECT_EQ(parse_operation("Acq(4)"), std::optional<Operation>(Acq(4)));
  EXPECT_EQ(parse_operation("Rel(4)"), std::optional<Operation>(Rel(4)));
  EXPECT_FALSE(parse_operation("R(1)").has_value());
  EXPECT_FALSE(parse_operation("X(1,2)").has_value());
  EXPECT_FALSE(parse_operation("W(1,2").has_value());
  EXPECT_FALSE(parse_operation("W(a,2)").has_value());
}

TEST(TextIo, ParsesFullTrace) {
  const auto result = parse_execution(
      "# message passing\n"
      "init 0 0\n"
      "final 1 1\n"
      "P: W(0,1) W(1,1)\n"
      "P: R(1,1) R(0,1)\n");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.execution.num_processes(), 2u);
  EXPECT_EQ(result.execution.final_value(1), std::optional<Value>(1));
}

TEST(TextIo, ReportsErrorLine) {
  const auto result = parse_execution("P: W(0,1)\nP: banana\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.line, 2u);
}

TEST(TextIo, RejectsUnknownDirective) {
  EXPECT_FALSE(parse_execution("Q: W(0,1)\n").ok());
}

TEST(TextIo, RejectsDuplicateInitDirective) {
  const auto result = parse_execution("init 3 1\ninit 3 2\nP: R(3,1)\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("duplicate init"), std::string::npos)
      << result.error;
  EXPECT_EQ(result.line, 2u);
  // Distinct addresses are fine.
  EXPECT_TRUE(parse_execution("init 3 1\ninit 4 2\nP: R(3,1)\n").ok());
}

TEST(TextIo, RejectsDuplicateFinalDirective) {
  const auto result = parse_execution("final 0 1\nfinal 0 1\nP: W(0,1)\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("duplicate final"), std::string::npos)
      << result.error;
  EXPECT_EQ(result.line, 2u);
}

TEST(TextIo, ReportsIntegerOverflowInDirectives) {
  // Value wider than 64 bits.
  const auto value = parse_execution("init 0 99999999999999999999999\n");
  ASSERT_FALSE(value.ok());
  EXPECT_NE(value.error.find("integer overflow"), std::string::npos)
      << value.error;
  // Address beyond the 32-bit Addr range.
  const auto addr = parse_execution("init 4294967296 0\n");
  ASSERT_FALSE(addr.ok());
  EXPECT_NE(addr.error.find("integer overflow"), std::string::npos)
      << addr.error;
  // Largest representable address still parses.
  EXPECT_TRUE(parse_execution("init 4294967295 0\nP: R(4294967295,0)\n").ok());
  // Negative addresses are rejected, not wrapped.
  EXPECT_FALSE(parse_execution("init -1 0\n").ok());
}

TEST(TextIo, ReportsIntegerOverflowInOperations) {
  const auto addr = parse_execution("P: W(4294967296,1)\n");
  ASSERT_FALSE(addr.ok());
  EXPECT_NE(addr.error.find("integer overflow"), std::string::npos)
      << addr.error;
  EXPECT_EQ(addr.line, 1u);
  const auto value = parse_execution("P: W(0,99999999999999999999999)\n");
  ASSERT_FALSE(value.ok());
  EXPECT_NE(value.error.find("integer overflow"), std::string::npos)
      << value.error;
  // The single-token entry point reports overflow as nullopt, like other
  // malformed tokens.
  EXPECT_FALSE(parse_operation("W(4294967296,1)").has_value());
  EXPECT_FALSE(parse_operation("R(0,99999999999999999999999)").has_value());
}

TEST(TextIo, RoundTrips) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), R(1, 2), RW(2, 3, 4), Acq(5), Rel(5))
                        .process(R(0, 1))
                        .initial(1, 2)
                        .final_value(0, 1)
                        .build();
  const auto parsed = parse_execution(serialize_execution(exec));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.execution, exec);
}

// --- Write-order serialization --------------------------------------------

TEST(WriteOrderIo, RoundTrips) {
  WriteOrderLog orders;
  orders[0] = {{0, 0}, {1, 2}, {0, 3}};
  orders[7] = {{2, 1}};
  const auto parsed = parse_write_orders(serialize_write_orders(orders));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.orders, orders);
}

TEST(WriteOrderIo, AcceptsCommentsAndEmptyOrders) {
  const auto parsed = parse_write_orders("# log\nwo 3\nwo 4 0:0\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.orders.at(3).empty());
  EXPECT_EQ(parsed.orders.at(4).size(), 1u);
}

TEST(WriteOrderIo, RejectsMalformed) {
  EXPECT_FALSE(parse_write_orders("xx 1 0:0\n").ok());
  EXPECT_FALSE(parse_write_orders("wo\n").ok());
  EXPECT_FALSE(parse_write_orders("wo a 0:0\n").ok());
  EXPECT_FALSE(parse_write_orders("wo 1 0-0\n").ok());
  EXPECT_FALSE(parse_write_orders("wo 1 0:x\n").ok());
  const auto bad = parse_write_orders("wo 1 0:0\nwo 2 frog\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.line, 2u);
}

// --- Parser fuzzing ---------------------------------------------------------

TEST(ParserFuzz, RandomBytesNeverCrash) {
  Xoshiro256ss rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    const std::size_t len = rng.below(120);
    for (std::size_t i = 0; i < len; ++i)
      garbage.push_back(static_cast<char>(rng.below(96) + 32 - (rng.chance(0.1) ? 22 : 0)));
    // Must return cleanly: either a parsed execution or a located error.
    const auto parsed = parse_execution(garbage);
    if (!parsed.ok()) {
      EXPECT_GT(parsed.line, 0u);
    }
    (void)parse_write_orders(garbage);
    (void)parse_operation(garbage);
  }
}

TEST(ParserFuzz, StructuredMutationsNeverCrash) {
  // Mutate a valid trace textually; the parser must stay graceful.
  Xoshiro256ss rng(78);
  const std::string base =
      "init 0 0\nfinal 1 2\nP: W(0,1) R(1,0) RW(1,0,2)\nP: R(0,1) Acq(9) "
      "Rel(9)\n";
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = base;
    const std::size_t pos = rng.below(mutated.size());
    switch (rng.below(3)) {
      case 0: mutated[pos] = static_cast<char>(rng.below(96) + 32); break;
      case 1: mutated.erase(pos, 1); break;
      default: mutated.insert(pos, 1, static_cast<char>(rng.below(96) + 32));
    }
    const auto parsed = parse_execution(mutated);
    if (parsed.ok()) {
      // Whatever parsed must re-serialize and re-parse identically.
      const auto again = parse_execution(serialize_execution(parsed.execution));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again.execution, parsed.execution);
    }
  }
}

// --- Trace statistics ----------------------------------------------------

TEST(TraceStatsTest, CountsPerKind) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), R(0, 1), RW(1, 0, 2), Acq(9))
                        .process(R(1, 2), W(1, 3))
                        .build();
  const auto stats = compute_stats(exec);
  EXPECT_EQ(stats.processes, 2u);
  EXPECT_EQ(stats.operations, 6u);
  EXPECT_EQ(stats.sync_ops, 1u);
  EXPECT_EQ(stats.reads, 3u);   // R, R, plus the RMW read component
  EXPECT_EQ(stats.writes, 3u);  // W, W, plus the RMW write component
  EXPECT_EQ(stats.rmws, 1u);
  EXPECT_EQ(stats.addresses, 2u);
}

TEST(TraceStatsTest, SharingDetection) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(1, 1))
                        .process(W(0, 2), R(1, 1))
                        .build();
  const auto stats = compute_stats(exec);
  // Address 0 written by both; address 1 written by one, read by other.
  EXPECT_EQ(stats.write_shared_addresses, 1u);
  ASSERT_EQ(stats.per_address.size(), 2u);
  EXPECT_EQ(stats.per_address[0].writers, 2u);
  EXPECT_EQ(stats.per_address[0].sharers, 2u);
  EXPECT_EQ(stats.per_address[1].writers, 1u);
  EXPECT_EQ(stats.per_address[1].sharers, 2u);
}

TEST(TraceStatsTest, ValueCollisionTracking) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 5), W(0, 5), W(0, 6))
                        .build();
  const auto stats = compute_stats(exec);
  EXPECT_EQ(stats.per_address[0].distinct_values, 2u);
  EXPECT_EQ(stats.per_address[0].max_writes_per_value, 2u);
}

TEST(TraceStatsTest, SummaryIsInformative) {
  const auto exec = ExecutionBuilder().process(W(0, 1), R(0, 1)).build();
  const auto text = summarize(compute_stats(exec));
  EXPECT_NE(text.find("1P"), std::string::npos);
  EXPECT_NE(text.find("2ops"), std::string::npos);
}

TEST(TraceStatsTest, EmptyExecution) {
  const auto stats = compute_stats(Execution{});
  EXPECT_EQ(stats.operations, 0u);
  EXPECT_EQ(stats.addresses, 0u);
}

}  // namespace
}  // namespace vermem
