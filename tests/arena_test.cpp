// Tests for the search-allocation layer: the bump/extent Arena (and its
// ArenaVec) plus the open-addressing FlatKeySet, including a randomized
// differential against std::unordered_set on the exact key distribution
// the frontier searches produce.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "support/arena.hpp"
#include "support/flat_set.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace vermem {
namespace {

TEST(Arena, AlignmentIsRespected) {
  Arena arena(128);
  for (const std::size_t align : {1, 2, 4, 8, 16, 32, 64}) {
    for (const std::size_t bytes : {1, 3, 7, 24, 100}) {
      void* p = arena.allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << bytes << " bytes at alignment " << align;
    }
  }
}

TEST(Arena, AllocationsDoNotOverlap) {
  Arena arena(64);  // tiny first extent, so growth happens mid-test
  std::vector<std::pair<char*, std::size_t>> chunks;
  for (std::size_t i = 0; i < 200; ++i) {
    const std::size_t bytes = 1 + (i * 7) % 50;
    auto* p = static_cast<char*>(arena.allocate(bytes, 4));
    std::memset(p, static_cast<int>(i & 0xff), bytes);
    chunks.emplace_back(p, bytes);
  }
  // Every chunk still holds its fill pattern: no overlap, no relocation.
  for (std::size_t i = 0; i < chunks.size(); ++i)
    for (std::size_t b = 0; b < chunks[i].second; ++b)
      ASSERT_EQ(static_cast<unsigned char>(chunks[i].first[b]), i & 0xff);
}

TEST(Arena, ExtentsGrowGeometrically) {
  Arena arena(64);
  EXPECT_EQ(arena.stats().extents, 0u);  // lazy: nothing until first use
  (void)arena.allocate(1, 1);
  EXPECT_EQ(arena.stats().extents, 1u);
  const std::uint64_t first = arena.stats().reserved;
  // Burn through several extents; each must at least double the reserve.
  std::uint64_t last_reserved = first;
  for (int i = 0; i < 4; ++i) {
    while (arena.stats().reserved == last_reserved) (void)arena.allocate(48, 8);
    const std::uint64_t grown = arena.stats().reserved - last_reserved;
    EXPECT_GE(grown, last_reserved) << "extent " << i << " grew sub-geometrically";
    last_reserved = arena.stats().reserved;
  }
  EXPECT_EQ(arena.stats().extents, 5u);
}

TEST(Arena, OversizedRequestGetsItsOwnExtent) {
  Arena arena(64);
  auto* p = static_cast<char*>(arena.allocate(10'000, 8));
  std::memset(p, 0xab, 10'000);
  EXPECT_GE(arena.stats().reserved, 10'000u);
}

TEST(Arena, ResetIsWholesaleAndRetainsLargestExtent) {
  Arena arena(64);
  for (int i = 0; i < 100; ++i) (void)arena.allocate(100, 8);
  const ArenaStats before = arena.stats();
  EXPECT_GT(before.extents, 1u);
  EXPECT_GT(before.high_water, 0u);

  arena.reset();
  const ArenaStats after_reset = arena.stats();
  EXPECT_EQ(after_reset.extents, 1u);  // largest extent retained for reuse
  EXPECT_LT(after_reset.reserved, before.reserved);
  EXPECT_GT(after_reset.reserved, 0u);
  // Lifetime counters survive the reset.
  EXPECT_EQ(after_reset.allocations, before.allocations);
  EXPECT_EQ(after_reset.high_water, before.high_water);
  EXPECT_EQ(after_reset.used, before.used);

  // Allocating within the retained extent reuses it: no new reserve.
  (void)arena.allocate(64, 8);
  EXPECT_EQ(arena.stats().reserved, after_reset.reserved);
  EXPECT_EQ(arena.stats().extents, 1u);
}

TEST(Arena, HighWaterTracksPeakNotCurrent) {
  Arena arena(64);
  for (int i = 0; i < 50; ++i) (void)arena.allocate(64, 8);
  const std::uint64_t peak = arena.stats().high_water;
  arena.reset();
  (void)arena.allocate(8, 8);
  EXPECT_GE(arena.stats().high_water, peak);  // peak is a lifetime maximum
}

TEST(ArenaVec, PushGrowAndIndex) {
  Arena arena(64);
  ArenaVec<std::uint64_t> vec(arena);
  EXPECT_TRUE(vec.empty());
  for (std::uint64_t i = 0; i < 1000; ++i) vec.push_back(i * 3);
  ASSERT_EQ(vec.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(vec[i], i * 3);
  vec.clear();
  EXPECT_TRUE(vec.empty());
  vec.push_back(7);
  EXPECT_EQ(vec[0], 7u);
}

// ---- FlatKeySet ---------------------------------------------------------

using Key = std::vector<std::uint32_t>;

struct KeyHash {
  std::size_t operator()(const Key& key) const noexcept {
    return static_cast<std::size_t>(hash_span<std::uint32_t>(key));
  }
};

TEST(FlatKeySet, FreshThenDuplicate) {
  Arena arena;
  FlatKeySet set(arena, 3);
  const std::uint32_t a[3] = {1, 2, 3};
  const std::uint32_t b[3] = {1, 2, 4};
  const auto first = set.insert(a);
  EXPECT_TRUE(first.fresh);
  EXPECT_EQ(first.id, 0u);
  const auto second = set.insert(b);
  EXPECT_TRUE(second.fresh);
  EXPECT_EQ(second.id, 1u);
  const auto dup = set.insert(a);
  EXPECT_FALSE(dup.fresh);
  EXPECT_EQ(dup.id, 0u);
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlatKeySet, KeysAreStableAcrossGrowth) {
  Arena arena;
  FlatKeySet set(arena, 2, 16);
  std::vector<const std::uint32_t*> stored;
  for (std::uint32_t i = 0; i < 500; ++i) {
    const std::uint32_t words[2] = {i, i ^ 0xdeadbeefu};
    const auto r = set.insert(words);
    ASSERT_TRUE(r.fresh);
    stored.push_back(set.key(r.id));
  }
  ASSERT_GT(set.capacity(), 500u);  // grew several times
  for (std::uint32_t i = 0; i < 500; ++i) {
    EXPECT_EQ(set.key(i), stored[i]);  // ids stay valid, keys never move
    EXPECT_EQ(set.key(i)[0], i);
    EXPECT_EQ(set.key(i)[1], i ^ 0xdeadbeefu);
  }
}

TEST(FlatKeySet, CollidingKeysStayDistinct) {
  // Keys differing only in the last word probe near each other under any
  // reasonable hash; all must survive growth without tombstone artifacts.
  Arena arena;
  FlatKeySet set(arena, 4, 16);
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const std::uint32_t words[4] = {7, 7, 7, i};
    ASSERT_TRUE(set.insert(words).fresh) << i;
  }
  for (std::uint32_t i = 0; i < 2000; ++i) {
    const std::uint32_t words[4] = {7, 7, 7, i};
    const auto r = set.insert(words);
    ASSERT_FALSE(r.fresh);
    ASSERT_EQ(r.id, i);
  }
}

TEST(FlatKeySet, RandomizedDifferentialAgainstUnorderedSet) {
  // The searches' key distribution: short vectors of small, regular
  // values with many near-duplicates. FlatKeySet must agree with
  // std::unordered_set insert-for-insert.
  for (const std::uint64_t seed : {1ull, 42ull, 1234567ull}) {
    Xoshiro256ss rng(seed);
    const std::size_t stride = 2 + static_cast<std::size_t>(rng() % 7);
    Arena arena;
    FlatKeySet set(arena, stride);
    std::unordered_set<Key, KeyHash> reference;
    Key key(stride);
    for (std::size_t step = 0; step < 20'000; ++step) {
      for (auto& word : key)
        word = static_cast<std::uint32_t>(rng() % 8);  // dense duplicates
      const bool fresh_ref = reference.insert(key).second;
      const auto r = set.insert(key.data());
      ASSERT_EQ(r.fresh, fresh_ref) << "seed " << seed << " step " << step;
    }
    ASSERT_EQ(set.size(), reference.size());
    EXPECT_GT(arena.stats().high_water, 0u);
  }
}

}  // namespace
}  // namespace vermem
