// Tests for the directory-based coherence simulator: clean runs verify,
// ack-waiting makes the machine SC while eager writes break SC but keep
// coherence (the live Section 6 distinction), and injected faults are
// caught by the checkers.

#include <gtest/gtest.h>

#include "sim/directory.hpp"
#include "vmc/checker.hpp"
#include "vsc/exact.hpp"
#include "vsc/vscc.hpp"

namespace vermem::sim {
namespace {

using vmc::Verdict;

DirectoryResult run_random_dir(std::uint64_t seed, FaultPlan faults = {},
                               std::size_t nodes = 4, std::size_t requests = 40,
                               bool eager_writes = false) {
  Xoshiro256ss rng(seed);
  RandomProgramParams params;
  params.num_cores = nodes;
  params.requests_per_core = requests;
  params.num_addresses = 6;
  const auto programs = random_programs(params, rng);
  DirectoryConfig config;
  config.num_nodes = nodes;
  config.cache_lines = 4;
  config.seed = seed;
  config.faults = faults;
  config.eager_writes = eager_writes;
  return run_programs_directory(programs, config);
}

TEST(Directory, CleanRunsAreCoherent) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const DirectoryResult result = run_random_dir(seed);
    EXPECT_EQ(result.stats.base.faults_injected, 0u);
    const auto report = vmc::verify_coherence_with_write_order(
        result.execution, result.write_orders);
    EXPECT_TRUE(report.coherent())
        << "seed " << seed << ": "
        << (report.first_violation() ? report.first_violation()->result.reason()
                                     : "undecided");
  }
}

TEST(Directory, CleanRunsAreSequentiallyConsistent) {
  // With invalidation-ack collection the machine implements SC.
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const DirectoryResult result = run_random_dir(seed, {}, 3, 12);
    vsc::VsccOptions options;
    options.write_orders = &result.write_orders;
    const auto report = vsc::check_vscc(result.execution, options);
    EXPECT_EQ(report.sc.verdict, Verdict::kCoherent)
        << "seed " << seed << ": " << report.sc.reason();
  }
}

TEST(Directory, EagerWritesStayCoherent) {
  // Committing before the invalidation acks is a *consistency* relaxation,
  // not a coherence bug: every run still verifies per address.
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    const DirectoryResult result =
        run_random_dir(seed, {}, 4, 40, /*eager_writes=*/true);
    const auto report = vmc::verify_coherence_with_write_order(
        result.execution, result.write_orders);
    EXPECT_TRUE(report.coherent()) << "seed " << seed;
  }
}

/// Message-passing workload: node 0 writes payload x then flag y each
/// round; node 1 polls flag then payload. The classic SC discriminator.
std::vector<Program> mp_programs(std::size_t rounds) {
  std::vector<Program> programs(2);
  for (std::size_t round = 1; round <= rounds; ++round) {
    programs[0].push_back({Request::Kind::kStore, 0, static_cast<Value>(round)});
    programs[0].push_back({Request::Kind::kStore, 1, static_cast<Value>(round)});
    programs[1].push_back({Request::Kind::kLoad, 1, 0});
    programs[1].push_back({Request::Kind::kLoad, 0, 0});
  }
  return programs;
}

TEST(Directory, EagerWritesEventuallyViolateSc) {
  // ...but on the message-passing shape some run must exhibit a non-SC
  // outcome: a lagging invalidation lets the reader see a fresh flag with
  // a stale payload.
  int sc_violations = 0;
  for (std::uint64_t seed = 1; seed <= 20 && sc_violations == 0; ++seed) {
    DirectoryConfig config;
    config.num_nodes = 2;
    config.cache_lines = 4;
    config.seed = seed;
    config.min_latency = 1;
    config.max_latency = 24;  // wide window: invalidations lag
    config.eager_writes = true;
    const DirectoryResult result =
        run_programs_directory(mp_programs(10), config);

    vsc::ScOptions sc;
    sc.max_transitions = 5'000'000;
    const auto verdict = vsc::check_sc_exact(result.execution, sc);
    if (verdict.verdict == Verdict::kIncoherent) {
      ++sc_violations;
      // Sanity: still coherent per address.
      EXPECT_TRUE(vmc::verify_coherence(result.execution).coherent());
    }
  }
  EXPECT_GT(sc_violations, 0)
      << "eager writes never produced an SC violation in 20 seeds";
}

TEST(Directory, DroppedInvalidationIsAConsistencyBugNotACoherenceBug) {
  // In this protocol a stale Shared copy can only ever serve *loads* (a
  // store or RMW on it misses to GetX and fetches fresh data), so a
  // dropped invalidation never breaks per-address coherence — but it
  // does break sequential consistency on the message-passing shape.
  FaultPlan plan;
  plan.drop_invalidation = 1.0;
  int sc_violations = 0, faulty_runs = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    DirectoryConfig config;
    config.num_nodes = 2;
    config.cache_lines = 4;
    config.seed = seed;
    config.faults = plan;
    const DirectoryResult result =
        run_programs_directory(mp_programs(8), config);
    if (result.stats.base.faults_injected == 0) continue;
    ++faulty_runs;

    // Coherence always survives.
    const auto coherence = vmc::verify_coherence_with_write_order(
        result.execution, result.write_orders);
    EXPECT_TRUE(coherence.coherent()) << "seed " << seed;

    vsc::ScOptions sc;
    sc.max_transitions = 5'000'000;
    if (vsc::check_sc_exact(result.execution, sc).verdict ==
        Verdict::kIncoherent)
      ++sc_violations;
  }
  EXPECT_GT(faulty_runs, 0);
  EXPECT_GT(sc_violations, 0);
}

TEST(Directory, DeterministicForSameSeed) {
  const DirectoryResult a = run_random_dir(31), b = run_random_dir(31);
  EXPECT_EQ(a.execution, b.execution);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
}

TEST(Directory, StatsAreConsistent) {
  const DirectoryResult result = run_random_dir(37, {}, 4, 100);
  const auto& stats = result.stats.base;
  EXPECT_EQ(stats.hits + stats.misses, stats.loads + stats.stores + stats.rmws);
  EXPECT_GT(result.stats.messages, 0u);
  EXPECT_GT(result.stats.ticks, 0u);
}

TEST(Directory, WriteOrderCoversAllWrites) {
  const DirectoryResult result = run_random_dir(41);
  std::size_t recorded = 0;
  for (const auto& [addr, order] : result.write_orders) recorded += order.size();
  std::size_t writes = 0;
  for (const auto& history : result.execution.histories())
    for (const auto& op : history) writes += op.writes_memory();
  EXPECT_EQ(recorded, writes);
}

struct DirFaultCase {
  const char* name;
  FaultPlan plan;
};

class DirectoryFaults : public ::testing::TestWithParam<DirFaultCase> {};

TEST_P(DirectoryFaults, InjectedFaultsAreCaught) {
  const FaultPlan plan = GetParam().plan;
  int injected_runs = 0, flagged_runs = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const DirectoryResult result = run_random_dir(seed, plan);
    if (result.stats.base.faults_injected == 0) continue;
    ++injected_runs;
    const auto report = vmc::verify_coherence_with_write_order(
        result.execution, result.write_orders);
    flagged_runs += report.verdict == Verdict::kIncoherent;
  }
  EXPECT_GT(injected_runs, 0);
  EXPECT_GT(flagged_runs, 0) << GetParam().name;
}

// Note: drop_invalidation is deliberately absent — in the directory
// protocol it is a pure consistency bug (see the dedicated test above).
INSTANTIATE_TEST_SUITE_P(
    Protocol, DirectoryFaults,
    ::testing::Values(
        DirFaultCase{"StaleFill", {.stale_fill = 0.6}},
        DirFaultCase{"LostWriteback", {.lost_writeback = 0.5}},
        DirFaultCase{"CorruptValue", {.corrupt_value = 0.1}}),
    [](const ::testing::TestParamInfo<DirFaultCase>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(Directory, SharedWorkloadsAgreeWithBusMachine) {
  // Same programs on both machines: both must produce coherent traces and
  // the same final ticket-counter value for the RMW workload.
  const auto programs = lock_contention(3, 10);
  SimConfig bus_config;
  bus_config.num_cores = 3;
  bus_config.seed = 5;
  const SimResult bus = run_programs(programs, bus_config);

  DirectoryConfig dir_config;
  dir_config.num_nodes = 3;
  dir_config.seed = 5;
  const DirectoryResult dir = run_programs_directory(programs, dir_config);

  EXPECT_EQ(bus.execution.final_value(0), dir.execution.final_value(0));
  EXPECT_TRUE(vmc::verify_coherence_with_write_order(dir.execution,
                                                     dir.write_orders)
                  .coherent());
}

}  // namespace
}  // namespace vermem::sim
