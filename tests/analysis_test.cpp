// Tests for the static trace analyzer: fragment classifier, lint rules,
// write-order log validation, and — the load-bearing part — differential
// agreement between every routed polynomial decider and the exact
// frontier search on randomized fragment-constrained traces.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/fragment.hpp"
#include "analysis/lint.hpp"
#include "analysis/poly/write_order.hpp"
#include "analysis/router.hpp"
#include "trace/address_index.hpp"
#include "trace/schedule.hpp"
#include "vmc/checker.hpp"
#include "vmc/exact.hpp"
#include "workload/random.hpp"

namespace {

using namespace vermem;
using analysis::Decider;
using analysis::Fragment;
using analysis::RuleId;

// --- helpers --------------------------------------------------------------

analysis::FragmentProfile classify_addr(const Execution& exec, Addr addr,
                                        bool has_write_order = false) {
  const AddressIndex index(exec);
  for (std::size_t i = 0; i < index.num_addresses(); ++i)
    if (index.entry(i).addr == addr)
      return analysis::classify(index.view_at(i), has_write_order);
  ADD_FAILURE() << "address " << addr << " not in index";
  return {};
}

/// Routed vs exact on a single-address execution: verdicts must agree,
/// and any coherent witness must validate in original coordinates.
struct Differential {
  vmc::Verdict routed = vmc::Verdict::kUnknown;
  vmc::Verdict exact = vmc::Verdict::kUnknown;
  Fragment fragment = Fragment::kGeneral;
  Decider decider = Decider::kExact;
  bool fell_back = false;
};

Differential run_differential(const Execution& exec,
                              const vmc::WriteOrderMap* orders = nullptr) {
  const AddressIndex index(exec);
  EXPECT_EQ(index.num_addresses(), 1u);
  const analysis::RoutedReport routed =
      analysis::verify_coherence_routed(index, orders);

  const Addr addr = index.entry(0).addr;
  const auto projection = index.view_at(0).materialize();
  const vmc::CheckResult exact =
      vmc::check_exact(vmc::VmcInstance{projection.execution, addr});

  const auto& result = routed.report.addresses[0].result;
  if (result.verdict == vmc::Verdict::kCoherent) {
    const auto check = check_coherent_schedule(exec, addr, result.witness);
    EXPECT_TRUE(check.ok) << "routed witness invalid: " << check.violation;
  }
  return {routed.report.verdict, exact.verdict, routed.fragments[0],
          routed.deciders[0], false};
}

Execution rmw_chain_exec(std::size_t n, std::size_t histories,
                         Value cycle) {
  Execution exec;
  for (std::size_t p = 0; p < histories; ++p)
    exec.add_history(ProcessHistory{});
  for (std::size_t t = 0; t < n; ++t)
    exec.append(t % histories, RW(0, static_cast<Value>(t % cycle),
                                  static_cast<Value>((t + 1) % cycle)));
  exec.set_final_value(0, static_cast<Value>(n % cycle));
  return exec;
}

bool has_rule(const std::vector<analysis::Diagnostic>& diagnostics,
              RuleId rule) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [rule](const analysis::Diagnostic& d) { return d.rule == rule; });
}

// --- classifier -----------------------------------------------------------

TEST(Classify, SyncOnlyExecutionHasNoAddresses) {
  const Execution exec =
      ExecutionBuilder().process_ops({Acq(0), Rel(0)}).build();
  const analysis::AnalysisReport report = analysis::analyze(exec);
  EXPECT_TRUE(report.addresses.empty());
  EXPECT_EQ(report.warning_count, 0u);
  EXPECT_FALSE(report.has_warnings());
}

TEST(Classify, SingleWrite) {
  const Execution exec = ExecutionBuilder().process_ops({W(0, 1)}).build();
  const auto profile = classify_addr(exec, 0);
  EXPECT_EQ(profile.fragment, Fragment::kOneOp);
  EXPECT_EQ(profile.num_ops, 1u);
  EXPECT_EQ(profile.num_writes, 1u);
  EXPECT_EQ(profile.num_reads, 0u);
  EXPECT_TRUE(profile.write_once);
  EXPECT_FALSE(profile.rmw_only);
}

TEST(Classify, OneOpRmw) {
  const Execution exec = ExecutionBuilder()
                             .process_ops({RW(0, 0, 1)})
                             .process_ops({RW(0, 1, 2)})
                             .build();
  const auto profile = classify_addr(exec, 0);
  EXPECT_EQ(profile.fragment, Fragment::kOneOpRmw);
  EXPECT_TRUE(profile.rmw_only);
}

TEST(Classify, WriteOnce) {
  const Execution exec = ExecutionBuilder()
                             .process_ops({W(0, 1), R(0, 2)})
                             .process_ops({W(0, 2), R(0, 1)})
                             .build();
  const auto profile = classify_addr(exec, 0);
  EXPECT_EQ(profile.fragment, Fragment::kWriteOnce);
  EXPECT_EQ(profile.max_writes_per_value, 1u);
}

TEST(Classify, WritingInitialValueDisqualifiesWriteOnce) {
  // W(0,0) re-writes the initial value: the read map is ambiguous, so
  // the instance cannot take the write-once fast path.
  const Execution exec = ExecutionBuilder()
                             .process_ops({W(0, 0), R(0, 0)})
                             .process_ops({W(0, 1)})
                             .build();
  const auto profile = classify_addr(exec, 0);
  EXPECT_TRUE(profile.writes_initial_value);
  EXPECT_FALSE(profile.write_once);
  EXPECT_EQ(profile.fragment, Fragment::kBoundedProcesses);
}

TEST(Classify, RmwOnlyWithDuplicatesIsRmwChain) {
  const Execution exec = rmw_chain_exec(16, 4, 8);
  const auto profile = classify_addr(exec, 0);
  EXPECT_EQ(profile.fragment, Fragment::kRmwChain);
  EXPECT_TRUE(profile.rmw_only);
  EXPECT_GT(profile.max_writes_per_value, 1u);
}

TEST(Classify, WriteOrderLogPinsFragment) {
  // Shape alone says write-once, but a supplied log pins the question to
  // "coherent under this serialization" — never downgraded.
  const Execution exec = ExecutionBuilder()
                             .process_ops({W(0, 1), R(0, 2)})
                             .process_ops({W(0, 2)})
                             .build();
  EXPECT_EQ(classify_addr(exec, 0, false).fragment, Fragment::kWriteOnce);
  EXPECT_EQ(classify_addr(exec, 0, true).fragment, Fragment::kWriteOrder);
}

TEST(Classify, BoundedVsGeneral) {
  std::vector<std::vector<Operation>> histories(4);
  for (std::size_t p = 0; p < 4; ++p)
    histories[p] = {W(0, 1), R(0, 1), W(0, 2)};
  ExecutionBuilder bounded;
  for (std::size_t p = 0; p < analysis::kBoundedProcessLimit; ++p)
    bounded.process_ops(histories[p]);
  EXPECT_EQ(classify_addr(bounded.build(), 0).fragment,
            Fragment::kBoundedProcesses);

  ExecutionBuilder general;
  for (std::size_t p = 0; p < 4; ++p) general.process_ops(histories[p]);
  EXPECT_EQ(classify_addr(general.build(), 0).fragment, Fragment::kGeneral);
}

// --- lint rules -----------------------------------------------------------

TEST(Lint, DuplicateValueWriteFiresAtThirdWrite) {
  const Execution exec =
      ExecutionBuilder()
          .process_ops({W(0, 7), R(0, 7), W(0, 7), W(0, 7)})
          .build();
  const analysis::AnalysisReport report = analysis::analyze(exec);
  ASSERT_EQ(report.addresses.size(), 1u);
  const auto& diagnostics = report.addresses[0].diagnostics;
  ASSERT_TRUE(has_rule(diagnostics, RuleId::kDuplicateValueWrite));
  for (const auto& d : diagnostics) {
    if (d.rule != RuleId::kDuplicateValueWrite) continue;
    EXPECT_EQ(d.severity, analysis::Severity::kWarning);
    ASSERT_TRUE(d.location.has_value());
    EXPECT_EQ(*d.location, (OpRef{0, 3}));  // the third write
  }
}

TEST(Lint, UnreadWriteSkipsReadAndFinalValues) {
  // Value 5 is unread and not final -> W002. Value 9 is unread but is
  // the recorded final value -> clean. Value 1 is read -> clean.
  const Execution exec = ExecutionBuilder()
                             .process_ops({W(0, 1), R(0, 1), W(0, 5), W(0, 9)})
                             .final_value(0, 9)
                             .build();
  const analysis::AnalysisReport report = analysis::analyze(exec);
  ASSERT_EQ(report.addresses.size(), 1u);
  const auto& diagnostics = report.addresses[0].diagnostics;
  std::size_t unread = 0;
  for (const auto& d : diagnostics) {
    if (d.rule != RuleId::kUnreadWrite) continue;
    ++unread;
    ASSERT_TRUE(d.location.has_value());
    EXPECT_EQ(*d.location, (OpRef{0, 2}));  // W(0,5)
  }
  EXPECT_EQ(unread, 1u);
}

TEST(Lint, RmwCandidateOnAdjacentReadWritePair) {
  const Execution with_pair =
      ExecutionBuilder().process_ops({R(0, 0), W(0, 1)}).build();
  EXPECT_TRUE(has_rule(
      analysis::analyze(with_pair).addresses[0].diagnostics,
      RuleId::kRmwAtomicityCandidate));

  // A real RMW is already atomic: no candidate.
  const Execution atomic =
      ExecutionBuilder().process_ops({RW(0, 0, 1)}).build();
  EXPECT_FALSE(has_rule(analysis::analyze(atomic).addresses[0].diagnostics,
                        RuleId::kRmwAtomicityCandidate));
}

TEST(Lint, InconsistentWriteOrderLog) {
  const Execution exec =
      ExecutionBuilder().process_ops({R(0, 0), W(0, 1)}).build();
  // Log names the read: invalid, W004.
  vmc::WriteOrderMap bad{{0, {OpRef{0, 0}}}};
  EXPECT_TRUE(has_rule(
      analysis::analyze(exec, &bad).addresses[0].diagnostics,
      RuleId::kInconsistentWriteOrderLog));
  // Log names the write: valid, no W004.
  vmc::WriteOrderMap good{{0, {OpRef{0, 1}}}};
  EXPECT_FALSE(has_rule(
      analysis::analyze(exec, &good).addresses[0].diagnostics,
      RuleId::kInconsistentWriteOrderLog));
}

TEST(Lint, FragmentClassificationInfoIsAlwaysLast) {
  const Execution exec = ExecutionBuilder().process_ops({W(0, 1)}).build();
  const analysis::AnalysisReport report = analysis::analyze(exec);
  ASSERT_EQ(report.addresses.size(), 1u);
  const auto& diagnostics = report.addresses[0].diagnostics;
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_EQ(diagnostics.back().rule, RuleId::kFragmentClassification);
  EXPECT_EQ(diagnostics.back().severity, analysis::Severity::kInfo);
  EXPECT_EQ(report.info_count, 1u);
}

TEST(Lint, RuleCatalogCodes) {
  EXPECT_STREQ(rule_code(RuleId::kDuplicateValueWrite), "W001");
  EXPECT_STREQ(rule_code(RuleId::kUnreadWrite), "W002");
  EXPECT_STREQ(rule_code(RuleId::kRmwAtomicityCandidate), "W003");
  EXPECT_STREQ(rule_code(RuleId::kInconsistentWriteOrderLog), "W004");
  EXPECT_STREQ(rule_code(RuleId::kFragmentClassification), "I001");
  EXPECT_EQ(rule_severity(RuleId::kFragmentClassification),
            analysis::Severity::kInfo);
  EXPECT_EQ(rule_severity(RuleId::kUnreadWrite),
            analysis::Severity::kWarning);
}

// --- write-order log validation -------------------------------------------

TEST(WriteOrderLog, RejectsEveryMalformation) {
  // P0: W(0,1) W(0,2); P1: W(1,9) — address 1 present to supply a
  // non-member ref with valid coordinates.
  const Execution exec = ExecutionBuilder()
                             .process_ops({W(0, 1), W(0, 2)})
                             .process_ops({W(1, 9)})
                             .build();
  const AddressIndex index(exec);
  ASSERT_EQ(index.entry(0).addr, 0u);
  const auto view = index.view_at(0);

  const OpRef w1{0, 0}, w2{0, 1}, other{1, 0};
  using analysis::poly::validate_write_order_log;

  EXPECT_TRUE(validate_write_order_log(view, std::vector{w1, w2}).ok);
  // Too short / too long.
  EXPECT_FALSE(validate_write_order_log(view, std::vector{w1}).ok);
  EXPECT_FALSE(validate_write_order_log(view, std::vector{w1, w2, w2}).ok);
  // Entry on another address.
  EXPECT_FALSE(validate_write_order_log(view, std::vector{w1, other}).ok);
  // Duplicate entry.
  EXPECT_FALSE(validate_write_order_log(view, std::vector{w1, w1}).ok);
  // Program-order inversion within one history.
  EXPECT_FALSE(validate_write_order_log(view, std::vector{w2, w1}).ok);
}

// --- router behavior ------------------------------------------------------

TEST(Router, EmptyExecutionVacuouslyCoherent) {
  const AddressIndex index{Execution{}};
  const analysis::RoutedReport report =
      analysis::verify_coherence_routed(index);
  EXPECT_EQ(report.report.verdict, vmc::Verdict::kCoherent);
  EXPECT_TRUE(report.fragments.empty());
}

TEST(Router, BranchingRmwChainFallsBackToExact) {
  // Two heads read the initial value, so the chain walk cannot commit;
  // the exact search must take over and still find the schedule
  // P0.0, P1.0, P2.0, P0.1.
  const Execution exec = ExecutionBuilder()
                             .process_ops({RW(0, 0, 1), RW(0, 2, 4)})
                             .process_ops({RW(0, 1, 0)})
                             .process_ops({RW(0, 0, 2)})
                             .build();
  const AddressIndex index(exec);
  const analysis::RoutedReport report =
      analysis::verify_coherence_routed(index);
  EXPECT_EQ(report.fragments[0], Fragment::kRmwChain);
  EXPECT_EQ(report.deciders[0], Decider::kExact);  // fell back
  EXPECT_EQ(report.report.verdict, vmc::Verdict::kCoherent);
  EXPECT_EQ(report.exact_routed, 1u);
}

TEST(Router, StalledRmwChainIsIncoherent) {
  // Forced prefix, then nothing reads the current value: a proof of
  // incoherence from the O(n) walk — and exact agrees.
  // Value 1 written twice keeps this out of the write-once-rmw bucket.
  const Execution exec = ExecutionBuilder()
                             .process_ops({RW(0, 0, 1), RW(0, 5, 1)})
                             .process_ops({RW(0, 1, 2)})
                             .build();
  const Differential d = run_differential(exec);
  EXPECT_EQ(d.fragment, Fragment::kRmwChain);
  EXPECT_EQ(d.decider, Decider::kRmwChain);
  EXPECT_EQ(d.routed, vmc::Verdict::kIncoherent);
  EXPECT_EQ(d.exact, vmc::Verdict::kIncoherent);
}

TEST(Router, InvalidWriteOrderLogNeverFallsBack) {
  // The question "coherent under THIS serialization" has no exact
  // fallback: an unusable log is an unknown verdict, surfaced to lint as
  // W004, exactly like the vmc write-order entry point behaves.
  const Execution exec =
      ExecutionBuilder().process_ops({R(0, 0), W(0, 1)}).build();
  vmc::WriteOrderMap bad{{0, {OpRef{0, 0}}}};
  const AddressIndex index(exec);
  const analysis::RoutedReport report =
      analysis::verify_coherence_routed(index, &bad);
  EXPECT_EQ(report.fragments[0], Fragment::kWriteOrder);
  EXPECT_EQ(report.deciders[0], Decider::kWriteOrder);
  EXPECT_EQ(report.report.verdict,
            vmc::verify_coherence_with_write_order(exec, bad).verdict);
}

// --- differential: routed deciders vs exact -------------------------------

TEST(DifferentialRouting, WriteOnceCoherentAndFaulty) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::SingleAddressParams params;
    params.num_histories = 6;
    params.ops_per_history = 10;
    params.num_values = 0;  // fresh values: the write-once regime
    params.write_fraction = 0.4;
    params.rmw_fraction = 0.0;
    Xoshiro256ss rng(seed);
    const workload::GeneratedTrace trace =
        workload::generate_coherent(params, rng);

    const Differential clean = run_differential(trace.execution);
    EXPECT_EQ(clean.fragment, Fragment::kWriteOnce) << "seed " << seed;
    EXPECT_EQ(clean.decider, Decider::kWriteOnce) << "seed " << seed;
    EXPECT_EQ(clean.routed, vmc::Verdict::kCoherent) << "seed " << seed;
    EXPECT_EQ(clean.exact, vmc::Verdict::kCoherent) << "seed " << seed;

    for (const auto fault :
         {workload::Fault::kStaleRead, workload::Fault::kLostWrite,
          workload::Fault::kFabricatedRead, workload::Fault::kReorderedOps}) {
      const auto faulty = workload::inject_fault(trace, fault, rng);
      if (!faulty) continue;
      const Differential d = run_differential(*faulty);
      EXPECT_EQ(d.routed, d.exact)
          << "seed " << seed << " fault " << to_string(fault);
    }
  }
}

TEST(DifferentialRouting, OneOpCoherentAndFaulty) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::SingleAddressParams params;
    params.num_histories = 24;
    params.ops_per_history = 1;
    params.num_values = 3;
    params.write_fraction = 0.5;
    params.rmw_fraction = 0.0;
    Xoshiro256ss rng(seed * 31);
    const workload::GeneratedTrace trace =
        workload::generate_coherent(params, rng);

    const Differential clean = run_differential(trace.execution);
    EXPECT_EQ(clean.fragment, Fragment::kOneOp) << "seed " << seed;
    EXPECT_EQ(clean.decider, Decider::kOneOp) << "seed " << seed;
    EXPECT_EQ(clean.routed, vmc::Verdict::kCoherent) << "seed " << seed;
    EXPECT_EQ(clean.exact, vmc::Verdict::kCoherent) << "seed " << seed;

    for (const auto fault :
         {workload::Fault::kStaleRead, workload::Fault::kLostWrite,
          workload::Fault::kFabricatedRead}) {
      const auto faulty = workload::inject_fault(trace, fault, rng);
      if (!faulty) continue;
      const Differential d = run_differential(*faulty);
      EXPECT_EQ(d.routed, d.exact)
          << "seed " << seed << " fault " << to_string(fault);
    }
  }
}

TEST(DifferentialRouting, ForcedRmwChainMatchesExact) {
  for (const std::size_t n : {16u, 48u, 96u}) {
    const Execution exec = rmw_chain_exec(n, 8, 16);
    const Differential d = run_differential(exec);
    EXPECT_EQ(d.fragment, Fragment::kRmwChain) << "n " << n;
    EXPECT_EQ(d.decider, Decider::kRmwChain) << "n " << n;
    EXPECT_EQ(d.routed, vmc::Verdict::kCoherent) << "n " << n;
    EXPECT_EQ(d.exact, vmc::Verdict::kCoherent) << "n " << n;
  }
}

TEST(DifferentialRouting, WriteOrderMatchesVmcEntryPoint) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    workload::SingleAddressParams params;
    params.num_histories = 6;
    params.ops_per_history = 8;
    params.num_values = 3;  // collisions: order genuinely needed
    params.write_fraction = 0.5;
    params.rmw_fraction = 0.0;
    Xoshiro256ss rng(seed * 17);
    const workload::GeneratedTrace trace =
        workload::generate_coherent(params, rng);
    vmc::WriteOrderMap orders{{0, trace.write_order}};

    const AddressIndex index(trace.execution);
    const analysis::RoutedReport routed =
        analysis::verify_coherence_routed(index, &orders);
    EXPECT_EQ(routed.fragments[0], Fragment::kWriteOrder) << "seed " << seed;
    EXPECT_EQ(routed.deciders[0], Decider::kWriteOrder) << "seed " << seed;
    EXPECT_EQ(routed.report.verdict, vmc::Verdict::kCoherent)
        << "seed " << seed;
    const auto& witness = routed.report.addresses[0].result.witness;
    const auto check = check_coherent_schedule(trace.execution, 0, witness);
    EXPECT_TRUE(check.ok) << "seed " << seed << ": " << check.violation;

    EXPECT_EQ(
        routed.report.verdict,
        vmc::verify_coherence_with_write_order(trace.execution, orders)
            .verdict)
        << "seed " << seed;
  }
}

TEST(DifferentialRouting, MultiAddressAgreesWithVmcCascade) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    workload::MultiAddressParams params;
    params.num_processes = 5;
    params.ops_per_process = 20;
    params.num_addresses = 6;
    params.num_values = 4;
    params.rmw_fraction = 0.2;
    Xoshiro256ss rng(seed * 101);
    const workload::GeneratedMultiTrace trace =
        workload::generate_sc(params, rng);

    const AddressIndex index(trace.execution);
    const analysis::RoutedReport routed =
        analysis::verify_coherence_routed(index);
    const vmc::CoherenceReport cascade = vmc::verify_coherence(index);
    EXPECT_EQ(routed.report.verdict, cascade.verdict) << "seed " << seed;
    ASSERT_EQ(routed.report.addresses.size(), cascade.addresses.size());
    for (std::size_t i = 0; i < cascade.addresses.size(); ++i)
      EXPECT_EQ(routed.report.addresses[i].result.verdict,
                cascade.addresses[i].result.verdict)
          << "seed " << seed << " addr index " << i;
    EXPECT_EQ(routed.poly_routed + routed.exact_routed,
              index.num_addresses());
  }
}

}  // namespace
