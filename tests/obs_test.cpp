// Observability subsystem: metrics registry (sharded counters and
// log-bucketed histograms aggregated on scrape), the RAII span tracer
// with its Chrome trace-event exporter, and the enable/disable gates.
// The concurrency tests drive real ThreadPool workers and assert EXACT
// totals — sharded relaxed recording must lose nothing (run under TSan
// in CI).

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "support/thread_pool.hpp"

namespace vermem::obs {
namespace {

/// Restores both enable flags; every test flips them.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_was_ = enabled();
    tracing_was_ = tracing_enabled();
    set_enabled(true);
    set_tracing_enabled(false);
  }
  void TearDown() override {
    set_enabled(metrics_was_);
    set_tracing_enabled(tracing_was_);
  }

 private:
  bool metrics_was_ = true;
  bool tracing_was_ = false;
};

std::uint64_t counter_value(const MetricsSnapshot& snapshot,
                            const std::string& name) {
  for (const auto& [n, v] : snapshot.counters)
    if (n == name) return v;
  return 0;
}

const HistogramData* histogram_data(const MetricsSnapshot& snapshot,
                                    const std::string& name) {
  for (const HistogramSnapshot& h : snapshot.histograms)
    if (h.name == name) return &h.data;
  return nullptr;
}

TEST_F(ObsTest, CounterConcurrentBumpsAreExact) {
  const Counter c = counter("vermem_test_concurrent_total");
  Registry::instance().reset();
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 10'000;
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> done;
    done.reserve(kTasks);
    for (std::size_t t = 0; t < kTasks; ++t)
      done.push_back(pool.submit([&c] {
        for (std::uint64_t i = 0; i < kPerTask; ++i) c.add(1);
      }));
    for (auto& f : done) f.get();
  }
  EXPECT_EQ(counter_value(snapshot_metrics(), "vermem_test_concurrent_total"),
            kTasks * kPerTask);
}

TEST_F(ObsTest, HistogramConcurrentObservationsAreExact) {
  const Histogram h = histogram("vermem_test_concurrent_nanos");
  Registry::instance().reset();
  constexpr std::size_t kTasks = 32;
  constexpr std::uint64_t kPerTask = 5'000;
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> done;
    done.reserve(kTasks);
    for (std::size_t t = 0; t < kTasks; ++t)
      done.push_back(pool.submit([&h, t] {
        for (std::uint64_t i = 0; i < kPerTask; ++i) h.observe(t + 1);
      }));
    for (auto& f : done) f.get();
  }
  const MetricsSnapshot snapshot = snapshot_metrics();
  const HistogramData* data =
      histogram_data(snapshot, "vermem_test_concurrent_nanos");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->count, kTasks * kPerTask);
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < kTasks; ++t) expected_sum += (t + 1) * kPerTask;
  EXPECT_EQ(data->sum, expected_sum);
}

TEST_F(ObsTest, ScopedDisableDropsRecordings) {
  const Counter c = counter("vermem_test_disabled_total");
  Registry::instance().reset();
  c.add(3);
  {
    scoped_disable off;
    EXPECT_FALSE(enabled());
    c.add(100);
  }
  EXPECT_TRUE(enabled());
  c.add(4);
  EXPECT_EQ(counter_value(snapshot_metrics(), "vermem_test_disabled_total"),
            7u);
}

TEST_F(ObsTest, RegistryReturnsSameSlotForSameName) {
  const Counter a = counter("vermem_test_same_total");
  const Counter b = counter("vermem_test_same_total");
  Registry::instance().reset();
  a.add(1);
  b.add(2);
  EXPECT_EQ(counter_value(snapshot_metrics(), "vermem_test_same_total"), 3u);
}

TEST_F(ObsTest, HistogramQuantileWithinBucketBounds) {
  HistogramData data;
  for (int i = 0; i < 1000; ++i) data.record(1000);  // bucket [512, 1024)
  const double p50 = data.quantile(0.50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  const double p99 = data.quantile(0.99);
  EXPECT_GE(p99, p50);
  EXPECT_DOUBLE_EQ(data.mean(), 1000.0);
}

TEST_F(ObsTest, QuantilesAreMonotoneAcrossBuckets) {
  HistogramData data;
  for (std::uint64_t v : {1u, 10u, 100u, 1000u, 10000u})
    for (int i = 0; i < 100; ++i) data.record(v);
  double last = 0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double value = data.quantile(q);
    EXPECT_GE(value, last) << "q=" << q;
    last = value;
  }
  // p50 must land near the middle value's bucket (100 -> [64,128)).
  EXPECT_GE(data.quantile(0.5), 64.0);
  EXPECT_LE(data.quantile(0.5), 128.0);
}

TEST_F(ObsTest, PrometheusExpositionShape) {
  const Counter c = counter("vermem_test_prom_total");
  const Histogram h = histogram("vermem_test_prom_nanos");
  Registry::instance().reset();
  c.add(5);
  h.observe(3);
  const std::string text = snapshot_metrics().to_prometheus();
  EXPECT_NE(text.find("# TYPE vermem_test_prom_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("vermem_test_prom_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vermem_test_prom_nanos histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("vermem_test_prom_nanos_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vermem_test_prom_nanos_sum 3\n"), std::string::npos);
  EXPECT_NE(text.find("vermem_test_prom_nanos_count 1\n"), std::string::npos);
}

TEST_F(ObsTest, PrometheusLabelsShareOneTypeLine) {
  const Counter a = counter("vermem_test_labeled_total{kind=\"a\"}");
  const Counter b = counter("vermem_test_labeled_total{kind=\"b\"}");
  Registry::instance().reset();
  a.add(1);
  b.add(2);
  const std::string text = snapshot_metrics().to_prometheus();
  std::size_t first = text.find("# TYPE vermem_test_labeled_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE vermem_test_labeled_total counter", first + 1),
            std::string::npos)
      << "labeled series must share a single # TYPE line";
  EXPECT_NE(text.find("vermem_test_labeled_total{kind=\"a\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vermem_test_labeled_total{kind=\"b\"} 2\n"),
            std::string::npos);
}

// ---- span tracer ---------------------------------------------------------

/// First numeric value following `"key":` after position `from`.
std::uint64_t json_number_after(const std::string& text, const std::string& key,
                                std::size_t from) {
  const std::size_t at = text.find("\"" + key + "\":", from);
  EXPECT_NE(at, std::string::npos) << key;
  if (at == std::string::npos) return 0;
  return std::stoull(text.substr(at + key.size() + 3));
}

TEST_F(ObsTest, SpanNestingParentLinksInChromeExport) {
  set_tracing_enabled(true);
  reset_trace();
  {
    Span outer("obs.test.outer");
    outer.attr("level", std::uint64_t{1});
    {
      Span inner("obs.test.inner");
      inner.attr("level", std::uint64_t{2});
      inner.attr("kind", "child");
    }
  }
  { Span sibling("obs.test.sibling"); }
  set_tracing_enabled(false);
  EXPECT_EQ(trace_event_count(), 3u);

  std::ostringstream out;
  write_chrome_trace(out);
  const std::string text = out.str();

  const std::size_t outer_at = text.find("\"name\":\"obs.test.outer\"");
  const std::size_t inner_at = text.find("\"name\":\"obs.test.inner\"");
  const std::size_t sibling_at = text.find("\"name\":\"obs.test.sibling\"");
  ASSERT_NE(outer_at, std::string::npos);
  ASSERT_NE(inner_at, std::string::npos);
  ASSERT_NE(sibling_at, std::string::npos);

  // Child links to parent; roots link to 0.
  const std::uint64_t outer_id = json_number_after(text, "id", outer_at);
  EXPECT_EQ(json_number_after(text, "parent", inner_at), outer_id);
  EXPECT_EQ(json_number_after(text, "parent", outer_at), 0u);
  EXPECT_EQ(json_number_after(text, "parent", sibling_at), 0u);
  // Same-thread export is start-ordered: outer before inner before sibling.
  EXPECT_LT(outer_at, inner_at);
  EXPECT_LT(inner_at, sibling_at);
  // Attributes survive into args.
  EXPECT_NE(text.find("\"kind\":\"child\""), std::string::npos);
  EXPECT_EQ(json_number_after(text, "level", inner_at), 2u);
}

TEST_F(ObsTest, SpansAcrossPoolThreadsCarryDistinctTids) {
  set_tracing_enabled(true);
  reset_trace();
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> done;
    for (int t = 0; t < 16; ++t)
      done.push_back(pool.submit([] { Span span("obs.test.pooled"); }));
    for (auto& f : done) f.get();
  }
  set_tracing_enabled(false);
  // 16 explicit spans; pool.task wrapper spans may add more.
  EXPECT_GE(trace_event_count(), 16u);
  std::ostringstream out;
  write_chrome_trace(out);
  const std::string text = out.str();
  std::size_t spans = 0;
  for (std::size_t at = text.find("obs.test.pooled"); at != std::string::npos;
       at = text.find("obs.test.pooled", at + 1))
    ++spans;
  EXPECT_EQ(spans, 16u);
}

TEST_F(ObsTest, DisabledSpansCollectNothing) {
  set_tracing_enabled(false);
  reset_trace();
  {
    Span span("obs.test.never");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

}  // namespace
}  // namespace vermem::obs
