// Observability subsystem: metrics registry (sharded counters and
// log-bucketed histograms aggregated on scrape), the RAII span tracer
// with its Chrome trace-event exporter, the rate-limited structured
// logger, the flight recorder (capture policy, crash dump), the SLO
// tracker, and the enable/disable gates. The concurrency tests drive
// real ThreadPool workers and assert EXACT totals — sharded relaxed
// recording must lose nothing (run under TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "support/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#endif

#if defined(__SANITIZE_THREAD__)
#define VERMEM_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VERMEM_TEST_TSAN 1
#endif
#endif

namespace vermem::obs {
namespace {

/// Restores both enable flags; every test flips them.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_was_ = enabled();
    tracing_was_ = tracing_enabled();
    set_enabled(true);
    set_tracing_enabled(false);
  }
  void TearDown() override {
    set_enabled(metrics_was_);
    set_tracing_enabled(tracing_was_);
  }

 private:
  bool metrics_was_ = true;
  bool tracing_was_ = false;
};

std::uint64_t counter_value(const MetricsSnapshot& snapshot,
                            const std::string& name) {
  for (const auto& [n, v] : snapshot.counters)
    if (n == name) return v;
  return 0;
}

const HistogramData* histogram_data(const MetricsSnapshot& snapshot,
                                    const std::string& name) {
  for (const HistogramSnapshot& h : snapshot.histograms)
    if (h.name == name) return &h.data;
  return nullptr;
}

TEST_F(ObsTest, CounterConcurrentBumpsAreExact) {
  const Counter c = counter("vermem_test_concurrent_total");
  Registry::instance().reset();
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 10'000;
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> done;
    done.reserve(kTasks);
    for (std::size_t t = 0; t < kTasks; ++t)
      done.push_back(pool.submit([&c] {
        for (std::uint64_t i = 0; i < kPerTask; ++i) c.add(1);
      }));
    for (auto& f : done) f.get();
  }
  EXPECT_EQ(counter_value(snapshot_metrics(), "vermem_test_concurrent_total"),
            kTasks * kPerTask);
}

TEST_F(ObsTest, HistogramConcurrentObservationsAreExact) {
  const Histogram h = histogram("vermem_test_concurrent_nanos");
  Registry::instance().reset();
  constexpr std::size_t kTasks = 32;
  constexpr std::uint64_t kPerTask = 5'000;
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> done;
    done.reserve(kTasks);
    for (std::size_t t = 0; t < kTasks; ++t)
      done.push_back(pool.submit([&h, t] {
        for (std::uint64_t i = 0; i < kPerTask; ++i) h.observe(t + 1);
      }));
    for (auto& f : done) f.get();
  }
  const MetricsSnapshot snapshot = snapshot_metrics();
  const HistogramData* data =
      histogram_data(snapshot, "vermem_test_concurrent_nanos");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->count, kTasks * kPerTask);
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < kTasks; ++t) expected_sum += (t + 1) * kPerTask;
  EXPECT_EQ(data->sum, expected_sum);
}

TEST_F(ObsTest, ScopedDisableDropsRecordings) {
  const Counter c = counter("vermem_test_disabled_total");
  Registry::instance().reset();
  c.add(3);
  {
    scoped_disable off;
    EXPECT_FALSE(enabled());
    c.add(100);
  }
  EXPECT_TRUE(enabled());
  c.add(4);
  EXPECT_EQ(counter_value(snapshot_metrics(), "vermem_test_disabled_total"),
            7u);
}

TEST_F(ObsTest, RegistryReturnsSameSlotForSameName) {
  const Counter a = counter("vermem_test_same_total");
  const Counter b = counter("vermem_test_same_total");
  Registry::instance().reset();
  a.add(1);
  b.add(2);
  EXPECT_EQ(counter_value(snapshot_metrics(), "vermem_test_same_total"), 3u);
}

TEST_F(ObsTest, HistogramQuantileWithinBucketBounds) {
  HistogramData data;
  for (int i = 0; i < 1000; ++i) data.record(1000);  // bucket [512, 1024)
  const double p50 = data.quantile(0.50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  const double p99 = data.quantile(0.99);
  EXPECT_GE(p99, p50);
  EXPECT_DOUBLE_EQ(data.mean(), 1000.0);
}

TEST_F(ObsTest, QuantilesAreMonotoneAcrossBuckets) {
  HistogramData data;
  for (std::uint64_t v : {1u, 10u, 100u, 1000u, 10000u})
    for (int i = 0; i < 100; ++i) data.record(v);
  double last = 0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double value = data.quantile(q);
    EXPECT_GE(value, last) << "q=" << q;
    last = value;
  }
  // p50 must land near the middle value's bucket (100 -> [64,128)).
  EXPECT_GE(data.quantile(0.5), 64.0);
  EXPECT_LE(data.quantile(0.5), 128.0);
}

TEST_F(ObsTest, PrometheusExpositionShape) {
  const Counter c = counter("vermem_test_prom_total");
  const Histogram h = histogram("vermem_test_prom_nanos");
  Registry::instance().reset();
  c.add(5);
  h.observe(3);
  const std::string text = snapshot_metrics().to_prometheus();
  EXPECT_NE(text.find("# TYPE vermem_test_prom_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("vermem_test_prom_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vermem_test_prom_nanos histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("vermem_test_prom_nanos_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vermem_test_prom_nanos_sum 3\n"), std::string::npos);
  EXPECT_NE(text.find("vermem_test_prom_nanos_count 1\n"), std::string::npos);
}

TEST_F(ObsTest, PrometheusLabelsShareOneTypeLine) {
  const Counter a = counter("vermem_test_labeled_total{kind=\"a\"}");
  const Counter b = counter("vermem_test_labeled_total{kind=\"b\"}");
  Registry::instance().reset();
  a.add(1);
  b.add(2);
  const std::string text = snapshot_metrics().to_prometheus();
  std::size_t first = text.find("# TYPE vermem_test_labeled_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE vermem_test_labeled_total counter", first + 1),
            std::string::npos)
      << "labeled series must share a single # TYPE line";
  EXPECT_NE(text.find("vermem_test_labeled_total{kind=\"a\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vermem_test_labeled_total{kind=\"b\"} 2\n"),
            std::string::npos);
}

// ---- span tracer ---------------------------------------------------------

/// First numeric value following `"key":` after position `from`.
std::uint64_t json_number_after(const std::string& text, const std::string& key,
                                std::size_t from) {
  const std::size_t at = text.find("\"" + key + "\":", from);
  EXPECT_NE(at, std::string::npos) << key;
  if (at == std::string::npos) return 0;
  return std::stoull(text.substr(at + key.size() + 3));
}

TEST_F(ObsTest, SpanNestingParentLinksInChromeExport) {
  set_tracing_enabled(true);
  reset_trace();
  {
    Span outer("obs.test.outer");
    outer.attr("level", std::uint64_t{1});
    {
      Span inner("obs.test.inner");
      inner.attr("level", std::uint64_t{2});
      inner.attr("kind", "child");
    }
  }
  { Span sibling("obs.test.sibling"); }
  set_tracing_enabled(false);
  EXPECT_EQ(trace_event_count(), 3u);
  EXPECT_EQ(trace_dropped_count(), 0u);

  std::ostringstream out;
  write_chrome_trace(out);
  const std::string text = out.str();

  const std::size_t outer_at = text.find("\"name\":\"obs.test.outer\"");
  const std::size_t inner_at = text.find("\"name\":\"obs.test.inner\"");
  const std::size_t sibling_at = text.find("\"name\":\"obs.test.sibling\"");
  ASSERT_NE(outer_at, std::string::npos);
  ASSERT_NE(inner_at, std::string::npos);
  ASSERT_NE(sibling_at, std::string::npos);

  // Child links to parent; roots link to 0.
  const std::uint64_t outer_id = json_number_after(text, "id", outer_at);
  EXPECT_EQ(json_number_after(text, "parent", inner_at), outer_id);
  EXPECT_EQ(json_number_after(text, "parent", outer_at), 0u);
  EXPECT_EQ(json_number_after(text, "parent", sibling_at), 0u);
  // Same-thread export is start-ordered: outer before inner before sibling.
  EXPECT_LT(outer_at, inner_at);
  EXPECT_LT(inner_at, sibling_at);
  // Attributes survive into args.
  EXPECT_NE(text.find("\"kind\":\"child\""), std::string::npos);
  EXPECT_EQ(json_number_after(text, "level", inner_at), 2u);
}

TEST_F(ObsTest, SpansAcrossPoolThreadsCarryDistinctTids) {
  set_tracing_enabled(true);
  reset_trace();
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> done;
    for (int t = 0; t < 16; ++t)
      done.push_back(pool.submit([] { Span span("obs.test.pooled"); }));
    for (auto& f : done) f.get();
  }
  set_tracing_enabled(false);
  // 16 explicit spans; pool.task wrapper spans may add more. Nothing may
  // be lost below the per-thread cap.
  EXPECT_GE(trace_event_count(), 16u);
  EXPECT_EQ(trace_dropped_count(), 0u);
  std::ostringstream out;
  write_chrome_trace(out);
  const std::string text = out.str();
  std::size_t spans = 0;
  for (std::size_t at = text.find("obs.test.pooled"); at != std::string::npos;
       at = text.find("obs.test.pooled", at + 1))
    ++spans;
  EXPECT_EQ(spans, 16u);
}

TEST_F(ObsTest, DisabledSpansCollectNothing) {
  set_tracing_enabled(false);
  reset_trace();
  {
    Span span("obs.test.never");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

// ---- structured logging --------------------------------------------------

/// Restores the process log level and clears the ring around each test.
class LogTest : public ObsTest {
 protected:
  void SetUp() override {
    ObsTest::SetUp();
    level_was_ = log_level();
    set_log_level(LogLevel::kDebug);
    reset_log();
  }
  void TearDown() override {
    reset_log();
    set_log_level(level_was_);
    ObsTest::TearDown();
  }

 private:
  LogLevel level_was_ = LogLevel::kWarn;
};

TEST_F(LogTest, LevelGateRefusesBelowProcessLevel) {
  const LogSite site = log_site("obs.test.level");
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(site.should(LogLevel::kWarn));
  EXPECT_FALSE(site.should(LogLevel::kInfo));
  EXPECT_FALSE(site.should(LogLevel::kDebug));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(site.should(LogLevel::kWarn));
  // Level-gated refusals are policy, not loss: nothing is "suppressed".
  EXPECT_EQ(log_suppressed_count(), 0u);
}

TEST_F(LogTest, TokenBucketAdmitsBurstThenSuppresses) {
  // interval 20 ms, tau = 4 intervals: from a full bucket exactly 4
  // back-to-back emissions pass, the rest are refused and counted.
  const LogSite site = log_site("obs.test.burst", 50.0, 4.0);
  int accepted = 0;
  for (std::uint64_t i = 0; i < 10; ++i)
    if (site.should(LogLevel::kWarn)) {
      ++accepted;
      LogLine(site, LogLevel::kWarn, "burst event").field("i", i);
    }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(log_suppressed_count(), 6u);
  // After a few refill intervals the site admits again, and that frame
  // reports how many emissions the bucket refused in between.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(site.should(LogLevel::kWarn));
  { LogLine line(site, LogLevel::kWarn, "after refill"); }
  std::ostringstream out;
  write_log_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"msg\":\"after refill\",\"suppressed\":6"),
            std::string::npos)
      << text;
  EXPECT_EQ(log_event_count(), 5u);
  EXPECT_EQ(log_dropped_count(), 0u);
}

TEST_F(LogTest, JsonlSchemaCarriesNumericAndStringFields) {
  const LogSite site = log_site("obs.test.schema");
  ASSERT_TRUE(site.should(LogLevel::kInfo));
  LogLine(site, LogLevel::kInfo, "schema check")
      .field("count", std::uint64_t{7})
      .field("tag", std::string_view("with \"quotes\""));
  std::ostringstream out;
  write_log_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(text.find("\"site\":\"obs.test.schema\""), std::string::npos);
  EXPECT_NE(text.find("\"msg\":\"schema check\""), std::string::npos);
  EXPECT_NE(text.find("\"count\":7"), std::string::npos);
  EXPECT_NE(text.find("\"tag\":\"with \\\"quotes\\\"\""), std::string::npos);
}

TEST_F(LogTest, ConcurrentLoggingRetainsExactTotals) {
  // Below the ring cap every concurrently committed frame must be
  // retained: zero drops, zero suppression (unlimited site). Run under
  // TSan in CI.
  const LogSite site = log_site("obs.test.stress", 0.0, 0.0);
  constexpr std::size_t kTasks = 8;
  constexpr std::uint64_t kPerTask = 256;
  static_assert(kTasks * kPerTask < kLogRingEvents);
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> done;
    done.reserve(kTasks);
    for (std::size_t t = 0; t < kTasks; ++t)
      done.push_back(pool.submit([&site] {
        for (std::uint64_t i = 0; i < kPerTask; ++i)
          if (site.should(LogLevel::kInfo))
            LogLine(site, LogLevel::kInfo, "stress").field("i", i);
      }));
    for (auto& f : done) f.get();
  }
  EXPECT_EQ(log_event_count(), kTasks * kPerTask);
  EXPECT_EQ(log_dropped_count(), 0u);
  EXPECT_EQ(log_suppressed_count(), 0u);
}

TEST_F(LogTest, RingOverwritesOldestAndCountsDrops) {
  Registry::instance().reset();
  const LogSite site = log_site("obs.test.overflow", 0.0, 0.0);
  for (std::size_t i = 0; i < kLogRingEvents + 10; ++i)
    LogLine(site, LogLevel::kDebug, "overflow");
  EXPECT_EQ(log_event_count(), kLogRingEvents);
  EXPECT_EQ(log_dropped_count(), 10u);
  EXPECT_EQ(counter_value(snapshot_metrics(),
                          "vermem_obs_dropped_total{kind=\"log\"}"),
            10u);
}

// ---- flight recorder -----------------------------------------------------

/// Restores the recorder switch and policy; clears retained records.
class FlightTest : public ObsTest {
 protected:
  void SetUp() override {
    ObsTest::SetUp();
    flight_was_ = flight_enabled();
    policy_was_ = flight_policy();
    set_flight_enabled(true);
    reset_flight();
  }
  void TearDown() override {
    reset_flight();
    set_flight_policy(policy_was_);
    set_flight_enabled(flight_was_);
    ObsTest::TearDown();
  }

 private:
  bool flight_was_ = false;
  FlightPolicy policy_was_;
};

TEST_F(FlightTest, FastCoherentRequestIsNotRetained) {
  FlightPolicy policy;
  policy.latency_threshold_nanos = 1'000'000'000;  // 1 s: nothing is slow
  set_flight_policy(policy);
  FlightScope scope("coherence", "fast");
  ASSERT_TRUE(scope.active());
  FlightScope::Summary summary;
  summary.verdict = "coherent";
  summary.latency_nanos = 1000;
  EXPECT_EQ(scope.finish(summary), 0u);
  EXPECT_EQ(flight_retained_count(), 0u);
  EXPECT_EQ(flight_retained_total(), 0u);
}

TEST_F(FlightTest, SlowRequestIsRetainedWithEventsAndSpans) {
  Registry::instance().reset();
  FlightPolicy policy;
  policy.latency_threshold_nanos = 10'000;
  set_flight_policy(policy);
  std::uint64_t id = 0;
  {
    FlightScope scope("coherence", "slow request");
    ASSERT_TRUE(scope.active());
    {
      // Tracing is off: these spans are collected only because the
      // thread is inside an active capture window.
      Span outer("obs.test.flight.outer");
      Span inner("obs.test.flight.inner");
      EXPECT_TRUE(inner.active());
    }
    flight_event(FlightEventKind::kTierEnter, "exact", 42, 7);
    FlightScope::Summary summary;
    summary.verdict = "coherent";
    summary.latency_nanos = 20'000;
    summary.effort.states = 123;
    id = scope.finish(summary);
  }
  ASSERT_NE(id, 0u);
  FlightRecord record;
  ASSERT_TRUE(flight_record_for(id, &record));
  EXPECT_STREQ(record.trigger, "slow");
  EXPECT_STREQ(record.verdict, "coherent");
  EXPECT_STREQ(record.tag, "slow request");
  EXPECT_STREQ(record.kind, "coherence");
  EXPECT_EQ(record.effort.states, 123u);
  EXPECT_EQ(record.dropped_events, 0u);
  EXPECT_EQ(record.dropped_spans, 0u);

  // The event window brackets the request and carries its id.
  ASSERT_GE(record.num_events, 3u);
  EXPECT_EQ(record.events[0].kind, FlightEventKind::kRequestBegin);
  EXPECT_EQ(record.events[record.num_events - 1].kind,
            FlightEventKind::kRequestEnd);
  bool saw_tier = false;
  for (std::uint32_t i = 0; i < record.num_events; ++i) {
    EXPECT_EQ(record.events[i].request_id, id);
    if (record.events[i].kind == FlightEventKind::kTierEnter &&
        record.events[i].a == 42 && record.events[i].b == 7)
      saw_tier = true;
  }
  EXPECT_TRUE(saw_tier);

  // Both spans captured (close order: inner first) with the parent link
  // resolvable inside the record.
  ASSERT_EQ(record.num_spans, 2u);
  EXPECT_STREQ(record.spans[0].name, "obs.test.flight.inner");
  EXPECT_STREQ(record.spans[1].name, "obs.test.flight.outer");
  EXPECT_EQ(record.spans[0].parent_id, record.spans[1].id);
  EXPECT_EQ(record.spans[1].parent_id, 0u);

  // Nothing was truncated, so nothing may be counted as dropped.
  EXPECT_EQ(counter_value(snapshot_metrics(),
                          "vermem_obs_dropped_total{kind=\"event\"}"),
            0u);
}

TEST_F(FlightTest, VerdictAndShedTriggersRetain) {
  FlightPolicy policy;
  policy.latency_threshold_nanos = 0;  // disarm the slow trigger
  set_flight_policy(policy);
  std::uint64_t incoherent_id = 0;
  std::uint64_t shed_id = 0;
  {
    FlightScope scope("coherence", "bad");
    FlightScope::Summary summary;
    summary.verdict = "incoherent";
    summary.incoherent = true;
    incoherent_id = scope.finish(summary);
  }
  {
    FlightScope scope("stream", "backpressure");
    flight_event(FlightEventKind::kShed, "queue full", 17);
    FlightScope::Summary summary;
    summary.verdict = "coherent";
    summary.shed = true;
    shed_id = scope.finish(summary);
  }
  FlightRecord record;
  ASSERT_TRUE(flight_record_for(incoherent_id, &record));
  EXPECT_STREQ(record.trigger, "incoherent");
  ASSERT_TRUE(flight_record_for(shed_id, &record));
  EXPECT_STREQ(record.trigger, "shed");
  EXPECT_TRUE(record.shed);
  EXPECT_EQ(flight_retained_total(), 2u);
  EXPECT_GT(shed_id, incoherent_id);  // ids are process-unique, monotonic
}

TEST_F(FlightTest, DisabledScopeIsInert) {
  set_flight_enabled(false);
  FlightScope scope("coherence", "off");
  EXPECT_FALSE(scope.active());
  EXPECT_EQ(scope.request_id(), 0u);
  FlightScope::Summary summary;
  summary.verdict = "incoherent";
  summary.incoherent = true;
  EXPECT_EQ(scope.finish(summary), 0u);
  EXPECT_EQ(flight_retained_count(), 0u);
}

TEST_F(FlightTest, WriteFlightJsonEmitsPolicyAndRecords) {
  FlightPolicy policy;
  policy.latency_threshold_nanos = 0;
  set_flight_policy(policy);
  {
    FlightScope scope("vscc", "undecided");
    FlightScope::Summary summary;
    summary.verdict = "unknown";
    summary.unknown = true;
    ASSERT_NE(scope.finish(summary), 0u);
  }
  std::ostringstream out;
  write_flight_json(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"policy\":{\"latency_threshold_nanos\":0"),
            std::string::npos);
  EXPECT_NE(text.find("\"retained_total\":1"), std::string::npos);
  EXPECT_NE(text.find("\"trigger\":\"unknown\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"vscc\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"request_begin\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"request_end\""), std::string::npos);
}

TEST_F(FlightTest, ConcurrentScopesRetainEveryTriggeredRequest) {
  // Per-thread rings: concurrent captures must not interfere and must
  // lose nothing (run under TSan in CI).
  Registry::instance().reset();
  FlightPolicy policy;
  policy.latency_threshold_nanos = 1;  // everything is "slow"
  set_flight_policy(policy);
  constexpr std::size_t kTasks = 16;
  std::vector<std::uint64_t> ids;
  {
    ThreadPool pool(8);
    std::vector<std::future<std::uint64_t>> done;
    done.reserve(kTasks);
    for (std::size_t t = 0; t < kTasks; ++t)
      done.push_back(pool.submit([t] {
        FlightScope scope("coherence", "stress");
        flight_event(FlightEventKind::kTierEnter, "exact", t);
        FlightScope::Summary summary;
        summary.verdict = "coherent";
        summary.latency_nanos = 100;
        return scope.finish(summary);
      }));
    for (auto& f : done) ids.push_back(f.get());
  }
  for (const std::uint64_t id : ids) EXPECT_NE(id, 0u);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(flight_retained_total(), kTasks);
  EXPECT_EQ(flight_retained_count(), kTasks);
  EXPECT_EQ(counter_value(snapshot_metrics(),
                          "vermem_obs_dropped_total{kind=\"event\"}"),
            0u);
}

#if defined(__unix__) || defined(__APPLE__)

TEST(FlightCrashDump, AbortWritesParsableBlackBox) {
#if defined(VERMEM_TEST_TSAN)
  GTEST_SKIP() << "fork + abort is not reliable under TSan";
#else
  const std::string path = ::testing::TempDir() + "obs_flight_crash.json";
  std::remove(path.c_str());
  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // Child: arm the black box, record some context, then die the way a
    // real crash would. _exit on any unexpected success path.
    set_flight_enabled(true);
    install_crash_handler(path.c_str());
    FlightScope scope("coherence", "crashing request");
    flight_event(FlightEventKind::kTierEnter, "exact", 1, 2);
    std::abort();
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler wrote no dump at " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"crash\":true"), std::string::npos) << text;
  EXPECT_NE(text.find("\"signal\":" + std::to_string(SIGABRT)),
            std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"tier_enter\""), std::string::npos);
  EXPECT_NE(text.find("\"counters\":{"), std::string::npos);
  std::remove(path.c_str());
#endif
}

#endif  // __unix__ || __APPLE__

// ---- SLO tracker ---------------------------------------------------------

TEST(SloTracker, ErrorBudgetBurnsWithErrorsAndBreaches) {
  SloOptions options;
  options.objective = 0.9;  // budget = 10% of traffic
  options.latency_slo_nanos = 1'000'000;
  SloTracker tracker(options);
  for (int i = 0; i < 98; ++i)
    tracker.record(RequestKind::kCoherence, 1000, false, 0);
  tracker.record(RequestKind::kCoherence, 1000, true, 0);       // error
  tracker.record(RequestKind::kCoherence, 2'000'000, false, 0);  // breach
  const SloSnapshot snapshot = tracker.snapshot();
  const KindSlo& kind =
      snapshot.kinds[static_cast<std::size_t>(RequestKind::kCoherence)];
  EXPECT_EQ(kind.total, 100u);
  EXPECT_EQ(kind.errors, 1u);
  EXPECT_EQ(kind.breaches, 1u);
  // budget = 10 requests, burned = 2: 80% remaining.
  EXPECT_NEAR(kind.error_budget_remaining, 0.8, 1e-9);
  EXPECT_GT(kind.p99_nanos, kind.p50_nanos);
  // Untouched kinds stay at full budget.
  const KindSlo& idle =
      snapshot.kinds[static_cast<std::size_t>(RequestKind::kStream)];
  EXPECT_EQ(idle.total, 0u);
  EXPECT_DOUBLE_EQ(idle.error_budget_remaining, 1.0);
}

TEST(SloTracker, ExemplarLinksLatencyBucketToFlightRecord) {
  SloTracker tracker;
  tracker.record(RequestKind::kVscc, 700, false, 0);
  tracker.record(RequestKind::kVscc, 900, false, 41);  // bucket [512,1024)
  const SloSnapshot snapshot = tracker.snapshot();
  const KindSlo& kind =
      snapshot.kinds[static_cast<std::size_t>(RequestKind::kVscc)];
  EXPECT_EQ(kind.exemplar_id[detail::bucket_of(900)], 41u);
  EXPECT_EQ(kind.exemplar_nanos[detail::bucket_of(900)], 900u);
  const std::string text = snapshot.to_prometheus();
  EXPECT_NE(text.find("# {flight_id=\"41\"} 900"), std::string::npos) << text;
  EXPECT_NE(text.find("vermem_slo_error_budget_remaining{kind=\"vscc\"}"),
            std::string::npos);
}

TEST(SloTracker, ResetClearsWindowsAndExemplars) {
  SloTracker tracker;
  tracker.record(RequestKind::kStream, 500, true, 9);
  tracker.reset();
  const SloSnapshot snapshot = tracker.snapshot();
  const KindSlo& kind =
      snapshot.kinds[static_cast<std::size_t>(RequestKind::kStream)];
  EXPECT_EQ(kind.total, 0u);
  EXPECT_EQ(kind.exemplar_id[detail::bucket_of(500)], 0u);
  EXPECT_DOUBLE_EQ(kind.error_budget_remaining, 1.0);
}

}  // namespace
}  // namespace vermem::obs
