// Randomized differential suite for the incremental SAT core. Every
// incremental mechanism — solve-under-assumptions, learned-clause
// retention across calls, push/pop stack frames, explicit activation
// frames — must produce verdicts identical to a scratch sat::solve of
// the equivalent one-shot formula, on generated k-SAT instances and on
// encoder-produced CNFs from coherent and fault-injected traces.
// Per-call RUP proofs replay via sat::check_rup_proof against
// formula_with(assumptions), and full incoherence certificates produced
// through the incremental-backed SAT route replay via certify::check().
// The warm kVscc sweep (fresh, suffix-extended, and reused) is checked
// against the cold per-address and whole-trace deciders, and the
// exact-tier portfolio race against the default (unraced) routing.
//
// CI runs this suite under TSan and ASan in addition to the plain jobs:
// the portfolio race and the retained-solver paths are exactly where a
// data race or a use-after-retirement would hide.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "analysis/router.hpp"
#include "certify/certificate.hpp"
#include "certify/check.hpp"
#include "encode/sweep.hpp"
#include "encode/vmc_to_cnf.hpp"
#include "encode/vsc_to_cnf.hpp"
#include "reductions/sat_to_vmc.hpp"
#include "sat/gen.hpp"
#include "sat/incremental.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"
#include "trace/address_index.hpp"
#include "vmc/exact.hpp"
#include "vmc/instance.hpp"
#include "vsc/vscc.hpp"
#include "workload/random.hpp"

namespace vermem {
namespace {

using workload::Fault;

/// Scratch oracle: the formula plus one unit per assumption, solved cold.
sat::Status scratch_status(const sat::Cnf& base,
                           const std::vector<sat::Lit>& assumptions) {
  sat::Cnf cnf = base;
  for (const sat::Lit a : assumptions) cnf.add_unit(a);
  return sat::solve(cnf).status;
}

std::vector<sat::Lit> random_assumptions(sat::Var num_vars, double density,
                                         Xoshiro256ss& rng) {
  std::vector<sat::Lit> assumptions;
  for (sat::Var v = 0; v < num_vars; ++v) {
    if (rng.chance(density))
      assumptions.push_back(rng.chance(0.5) ? sat::pos(v) : sat::neg(v));
  }
  return assumptions;
}

// ---- Assumptions vs scratch ----------------------------------------------

TEST(IncrementalAssumptions, MatchesScratchOnRandomKsat) {
  Xoshiro256ss rng(31);
  for (int trial = 0; trial < 16; ++trial) {
    const auto num_vars = static_cast<sat::Var>(6 + rng.below(10));
    const auto num_clauses =
        static_cast<std::size_t>(1 + rng.below(5 * num_vars));
    const sat::Cnf cnf = sat::random_ksat(num_vars, num_clauses, 3, rng);

    sat::IncrementalSolver inc;
    inc.add_cnf(cnf);
    // Several warm calls on one solver: later calls start from the
    // learned clauses and saved phases of the earlier ones.
    for (int round = 0; round < 6; ++round) {
      const auto assumptions = random_assumptions(num_vars, 0.25, rng);
      const sat::SolveResult warm = inc.solve(assumptions);
      ASSERT_NE(warm.status, sat::Status::kUnknown);
      ASSERT_EQ(warm.status, scratch_status(cnf, assumptions))
          << "trial " << trial << " round " << round;

      if (warm.status == sat::Status::kSat) {
        EXPECT_TRUE(inc.formula_with(assumptions).satisfied_by(warm.model));
      } else {
        // The failed-assumption core must itself suffice for UNSAT: the
        // formula plus the core assumptions (negations of the conflict
        // clause's literals) has no model.
        std::vector<sat::Lit> core;
        for (const sat::Lit l : warm.conflict) {
          core.push_back(~l);
          EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), ~l),
                    assumptions.end())
              << "core literal not among the assumptions";
        }
        EXPECT_EQ(scratch_status(cnf, core), sat::Status::kUnsat);
      }
    }
  }
}

// ---- Learned-clause retention on a growing formula -----------------------

TEST(IncrementalRetention, GrowingFormulaMatchesScratchAtEveryStep) {
  Xoshiro256ss rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const auto num_vars = static_cast<sat::Var>(8 + rng.below(8));
    // Over-constrained: the stream crosses from SAT into UNSAT, so the
    // sweep exercises verdict flips under retained clauses.
    const sat::Cnf full = sat::random_ksat(
        num_vars, static_cast<std::size_t>(6) * num_vars, 3, rng);

    sat::IncrementalSolver inc;
    inc.reserve_vars(num_vars);
    sat::Cnf prefix;
    prefix.reserve_vars(num_vars);
    std::size_t next = 0;
    std::uint64_t solves = 0;
    while (next < full.clauses.size()) {
      const std::size_t batch = 1 + rng.below(8);
      for (std::size_t i = 0; i < batch && next < full.clauses.size(); ++i) {
        inc.add_clause(full.clauses[next]);
        prefix.add_clause(full.clauses[next]);
        ++next;
      }
      const sat::SolveResult warm = inc.solve();
      ASSERT_EQ(warm.status, sat::solve(prefix).status)
          << "trial " << trial << " after " << next << " clauses";
      ++solves;
      // Once the prefix is UNSAT the incremental solver is permanently
      // so (ok() false, further adds ignored) — and the scratch oracle
      // agrees because clause addition is monotone.
      if (warm.status == sat::Status::kUnsat) {
        EXPECT_FALSE(inc.ok());
      }
    }
    EXPECT_EQ(inc.num_solves(), solves);
  }
}

// ---- Push/pop stack frames -----------------------------------------------

TEST(IncrementalFrames, PushPopSequencesMatchScratch) {
  Xoshiro256ss rng(123);
  for (int trial = 0; trial < 12; ++trial) {
    const auto num_vars = static_cast<sat::Var>(6 + rng.below(8));
    sat::IncrementalSolver inc;
    inc.reserve_vars(num_vars);
    // Mirror: stack of clause groups; the live formula is their union.
    std::vector<std::vector<sat::Clause>> stack(1);

    for (int step = 0; step < 48; ++step) {
      const auto action = rng.below(10);
      if (action < 2 && stack.size() < 5) {
        (void)inc.push();
        stack.emplace_back();
      } else if (action < 4 && stack.size() > 1) {
        inc.pop();
        stack.pop_back();
      } else if (action < 8) {
        sat::Clause clause;
        const std::size_t width = 1 + rng.below(3);
        while (clause.size() < width) {
          const auto v = static_cast<sat::Var>(rng.below(num_vars));
          const sat::Lit l = rng.chance(0.5) ? sat::pos(v) : sat::neg(v);
          if (std::find_if(clause.begin(), clause.end(), [&](sat::Lit c) {
                return c.var() == v;
              }) == clause.end())
            clause.push_back(l);
        }
        inc.add_clause(clause);
        stack.back().push_back(std::move(clause));
      } else {
        sat::Cnf scratch;
        scratch.reserve_vars(num_vars);
        for (const auto& frame : stack)
          for (const auto& clause : frame) scratch.add_clause(clause);
        const sat::SolveResult warm = inc.solve();
        ASSERT_EQ(warm.status, sat::solve(scratch).status)
            << "trial " << trial << " step " << step << " depth "
            << stack.size() - 1;
        if (warm.status == sat::Status::kSat) {
          // Restricted to the original variables (activation literals
          // live above them), the warm model satisfies the scratch CNF.
          const std::vector<bool> restricted(warm.model.begin(),
                                             warm.model.begin() + num_vars);
          EXPECT_TRUE(scratch.satisfied_by(restricted));
        }
      }
    }
    EXPECT_EQ(inc.depth(), stack.size() - 1);
  }
}

// ---- Explicit activation frames (the sweep's mechanism) ------------------

TEST(IncrementalFrames, GuardedSubsetsAndRetirementMatchScratch) {
  Xoshiro256ss rng(55);
  constexpr std::size_t kGroups = 4;
  for (int trial = 0; trial < 8; ++trial) {
    const auto num_vars = static_cast<sat::Var>(8 + rng.below(6));
    const sat::Cnf base = sat::random_ksat(
        num_vars, static_cast<std::size_t>(2) * num_vars, 3, rng);
    std::array<sat::Cnf, kGroups> groups;
    for (auto& group : groups)
      group = sat::random_ksat(num_vars, 1 + rng.below(2 * num_vars), 3, rng);

    sat::IncrementalSolver inc;
    inc.add_cnf(base);
    std::array<sat::Var, kGroups> act{};
    for (std::size_t g = 0; g < kGroups; ++g) {
      act[g] = inc.new_activation();
      for (const auto& clause : groups[g].clauses)
        inc.add_guarded(act[g], clause);
    }

    const auto check_subset = [&](std::uint64_t mask) {
      std::vector<sat::Lit> assumptions;
      sat::Cnf scratch = base;
      for (std::size_t g = 0; g < kGroups; ++g) {
        if (!(mask & (1u << g))) continue;
        assumptions.push_back(sat::pos(act[g]));
        for (const auto& clause : groups[g].clauses)
          scratch.add_clause(clause);
      }
      const sat::SolveResult warm = inc.solve(assumptions);
      ASSERT_EQ(warm.status, sat::solve(scratch).status)
          << "trial " << trial << " mask " << mask;
    };

    // Arbitrary subsets, in arbitrary order — exactly the kVscc sweep's
    // access pattern (per-address singletons, then the all-frames call).
    for (int round = 0; round < 10; ++round) check_subset(rng.below(16));
    check_subset((1u << kGroups) - 1);

    // Retiring a frame permanently disables its clauses; the remaining
    // subsets still answer as if the group never existed.
    inc.retire(act[0]);
    for (int round = 0; round < 6; ++round)
      check_subset(rng.below(8) << 1);  // subsets of groups 1..3
  }
}

// ---- RUP proof replay across retained solves -----------------------------

TEST(IncrementalProofs, RupReplayUnderAssumptionsAndRetention) {
  sat::SolverOptions options;
  options.log_proof = true;
  Xoshiro256ss rng(99);
  int unsat_replayed = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto num_vars = static_cast<sat::Var>(8 + rng.below(6));
    const sat::Cnf cnf = sat::random_ksat(
        num_vars, static_cast<std::size_t>(1 + rng.below(5 * num_vars)), 3,
        rng);
    sat::IncrementalSolver inc(options);
    inc.add_cnf(cnf);
    for (int round = 0; round < 6; ++round) {
      const auto assumptions = random_assumptions(num_vars, 0.35, rng);
      const sat::SolveResult result = inc.solve(assumptions);
      if (result.status != sat::Status::kUnsat) continue;
      // The per-call refutation (cumulative retained log + the empty
      // clause) must replay against the formula-plus-assumption-units —
      // even though earlier calls, under different assumptions,
      // contributed the retained prefix of the log.
      EXPECT_TRUE(sat::check_rup_proof(inc.formula_with(assumptions),
                                       result.proof))
          << "trial " << trial << " round " << round;
      ++unsat_replayed;
    }
  }
  EXPECT_GT(unsat_replayed, 0) << "battery produced no UNSAT calls";

  // Unconditionally UNSAT formula, solved twice: the second call's proof
  // is the grown log and must still replay.
  sat::IncrementalSolver inc(options);
  inc.add_cnf(sat::pigeonhole(4));
  const sat::SolveResult first = inc.solve();
  ASSERT_EQ(first.status, sat::Status::kUnsat);
  EXPECT_TRUE(sat::check_rup_proof(inc.formula(), first.proof));
  const sat::SolveResult second = inc.solve();
  ASSERT_EQ(second.status, sat::Status::kUnsat);
  EXPECT_TRUE(sat::check_rup_proof(inc.formula(), second.proof));
}

// ---- Encoder CNFs: trace-shaped formulas through the warm solver ---------

TEST(IncrementalEncoders, TraceCnfsMatchScratchAndCertify) {
  Xoshiro256ss rng(2024);
  for (int trial = 0; trial < 6; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 2 + rng.below(3);
    params.ops_per_history = 2 + rng.below(4);
    params.num_values = 1 + rng.below(4);
    const auto trace = workload::generate_coherent(params, rng);

    std::vector<Execution> cases{trace.execution};
    for (const Fault f : {Fault::kStaleRead, Fault::kLostWrite,
                          Fault::kFabricatedRead, Fault::kReorderedOps}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }

    for (const Execution& exec : cases) {
      const vmc::VmcInstance instance{exec, params.addr};
      const encode::VmcEncoding enc = encode::encode_vmc(instance);
      const sat::Status cold = enc.trivially_incoherent
                                   ? sat::Status::kUnsat
                                   : sat::solve(enc.cnf).status;

      sat::IncrementalSolver inc;
      inc.add_cnf(enc.cnf);
      // Two warm calls: the second re-solves entirely from retained
      // state and must not drift.
      EXPECT_EQ(inc.solve().status, cold);
      EXPECT_EQ(inc.solve().status, cold);

      // Assuming one order variable each way stays consistent with the
      // scratch formula plus that unit (one direction may be UNSAT, but
      // never both on a satisfiable encoding).
      if (cold == sat::Status::kSat && !enc.order_vars.empty()) {
        const sat::Var v = enc.order_vars[rng.below(enc.order_vars.size())];
        for (const sat::Lit l : {sat::pos(v), sat::neg(v)}) {
          EXPECT_EQ(inc.solve({l}).status, scratch_status(enc.cnf, {l}));
        }
      }

      // End-to-end certificate replay: the SAT-route verdict (solved by
      // the incremental engine behind sat::solve) is re-validated by the
      // independent checker, including RUP refutations for incoherent
      // verdicts.
      const vmc::CheckResult via_sat = encode::check_via_sat(instance);
      ASSERT_NE(via_sat.verdict, vmc::Verdict::kUnknown);
      const auto cert =
          certify::from_result(certify::Scope::kAddress, params.addr, via_sat);
      const auto outcome = certify::check(exec, cert);
      EXPECT_TRUE(outcome.ok) << outcome.violation;
    }
  }
}

// ---- Warm kVscc sweep vs cold deciders -----------------------------------

Execution truncated_prefix(const Execution& exec, Xoshiro256ss& rng) {
  std::vector<ProcessHistory> histories;
  for (std::uint32_t p = 0; p < exec.num_processes(); ++p) {
    auto ops = exec.history(p).ops();
    ops.resize(1 + rng.below(ops.size()));
    histories.emplace_back(std::move(ops));
  }
  Execution out{std::move(histories)};
  for (const auto& [addr, value] : exec.initial_values())
    out.set_initial_value(addr, value);
  // No final values: a truncated trace need not end where the full run
  // did, and the sweep treats the final-value change as part of the
  // suffix extension's frame re-emission anyway.
  return out;
}

void expect_sweep_matches_cold(encode::VscSweep& sweep, const Execution& exec) {
  // Whole-trace SC query vs the cold one-shot encoding.
  const auto all = sweep.solve_all();
  const vmc::CheckResult cold_sc = encode::check_sc_via_sat(exec);
  ASSERT_NE(all.status, sat::Status::kUnknown);
  ASSERT_NE(cold_sc.verdict, vmc::Verdict::kUnknown);
  EXPECT_EQ(all.status == sat::Status::kSat,
            cold_sc.verdict == vmc::Verdict::kCoherent)
      << cold_sc.reason();
  if (all.status == sat::Status::kSat) {
    const auto valid = check_sc_schedule(exec, all.schedule);
    EXPECT_TRUE(valid.ok) << valid.violation;
  }

  // Per-address queries vs the independent exact coherence search on the
  // projection (per-address VSC of the full trace == coherence of the
  // address's projection).
  const AddressIndex index(exec);
  const std::set<Addr> indexed(index.addresses().begin(),
                               index.addresses().end());
  for (std::size_t i = 0; i < sweep.num_addresses(); ++i) {
    const Addr addr = sweep.address(i);
    if (indexed.count(addr) == 0) continue;
    const auto outcome = sweep.solve_address(i);
    ASSERT_NE(outcome.status, sat::Status::kUnknown);
    const auto materialized = index.view(addr).materialize();
    const vmc::CheckResult exact =
        vmc::check_exact(vmc::VmcInstance{materialized.execution, addr});
    ASSERT_NE(exact.verdict, vmc::Verdict::kUnknown);
    EXPECT_EQ(outcome.status == sat::Status::kSat,
              exact.verdict == vmc::Verdict::kCoherent)
        << "addr " << addr << ": " << exact.reason();
  }
}

TEST(SweepDifferential, WarmFreshExtendedReusedMatchColdDeciders) {
  Xoshiro256ss rng(606);
  for (int trial = 0; trial < 5; ++trial) {
    workload::MultiAddressParams params;
    params.num_processes = 2 + rng.below(2);
    params.ops_per_process = 3 + rng.below(3);
    params.num_addresses = 1 + rng.below(3);
    params.num_values = 2 + rng.below(3);
    const auto trace = workload::generate_sc(params, rng);
    const Execution prefix = truncated_prefix(trace.execution, rng);

    encode::VscSweep sweep;
    ASSERT_EQ(sweep.prepare(prefix), encode::VscSweep::Prepare::kFresh);
    expect_sweep_matches_cold(sweep, prefix);

    // Suffix extension: same solver, skeleton extended in place, frames
    // re-emitted — verdicts must match a cold solve of the full trace.
    ASSERT_EQ(sweep.prepare(trace.execution),
              encode::VscSweep::Prepare::kExtended);
    expect_sweep_matches_cold(sweep, trace.execution);

    // Identical re-prepare is a no-op and keeps answering correctly.
    ASSERT_EQ(sweep.prepare(trace.execution),
              encode::VscSweep::Prepare::kReused);
    expect_sweep_matches_cold(sweep, trace.execution);

    EXPECT_GT(sweep.num_solves(), 0u);
  }
}

TEST(SweepDifferential, FaultedScPipelineSweepAgreesWithCold) {
  Xoshiro256ss rng(707);
  for (int trial = 0; trial < 4; ++trial) {
    workload::MultiAddressParams params;
    params.num_processes = 2;
    params.ops_per_process = 3 + rng.below(3);
    params.num_addresses = 1 + rng.below(2);
    params.num_values = 2;
    const auto trace = workload::generate_sc(params, rng);

    vsc::VsccOptions warm;
    warm.use_sat_sweep = true;
    const vsc::VsccReport swept = vsc::check_vscc(trace.execution, warm);
    const vsc::VsccReport cold =
        vsc::check_vscc(trace.execution, vsc::VsccOptions{});
    EXPECT_TRUE(swept.used_sat_sweep);
    if (swept.sc.verdict != vmc::Verdict::kUnknown &&
        cold.sc.verdict != vmc::Verdict::kUnknown) {
      EXPECT_EQ(swept.sc.verdict, cold.sc.verdict) << swept.sc.reason();
    }
    EXPECT_EQ(swept.coherence.verdict, cold.coherence.verdict);
  }
}

// ---- Exact-tier portfolio vs default routing -----------------------------

TEST(PortfolioDifferential, RacedVerdictsMatchDefaultRouting) {
  Xoshiro256ss rng(404);
  std::uint64_t races = 0;
  std::uint64_t wins = 0;
  for (int trial = 0; trial < 8; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 3 + rng.below(3);
    params.ops_per_history = 3 + rng.below(4);
    // Heavy value collisions keep instances in the general fragment,
    // where the exact tier (and hence the race) actually runs.
    params.num_values = 1 + rng.below(3);
    params.write_fraction = 0.5;
    const auto trace = workload::generate_coherent(params, rng);

    std::vector<Execution> cases{trace.execution};
    for (const Fault f : {Fault::kStaleRead, Fault::kLostWrite,
                          Fault::kFabricatedRead, Fault::kReorderedOps}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }

    for (const Execution& exec : cases) {
      const AddressIndex index(exec);
      const auto base = analysis::verify_coherence_routed(index);
      analysis::PortfolioOptions portfolio;
      portfolio.enabled = true;
      const auto raced =
          analysis::verify_coherence_routed(index, nullptr, {}, portfolio);

      EXPECT_EQ(raced.report.verdict, base.report.verdict);
      ASSERT_EQ(raced.report.addresses.size(), base.report.addresses.size());
      for (std::size_t i = 0; i < base.report.addresses.size(); ++i) {
        EXPECT_EQ(raced.report.addresses[i].result.verdict,
                  base.report.addresses[i].result.verdict)
            << "addr " << base.report.addresses[i].addr;
      }
      races += raced.portfolio_races;
      for (const std::uint64_t w : raced.engine_wins) wins += w;
    }
  }
  // The battery is tuned so at least some instances reach the exact
  // tier; every decided race records exactly one winner.
  EXPECT_GT(races, 0u);
  EXPECT_EQ(wins, races);
}

TEST(PortfolioDifferential, ForcedEngineRecordsItselfAsWinner) {
  Xoshiro256ss rng(505);
  workload::SingleAddressParams params;
  params.num_histories = 4;
  params.ops_per_history = 5;
  params.num_values = 2;
  params.write_fraction = 0.5;
  const auto trace = workload::generate_coherent(params, rng);
  const AddressIndex index(trace.execution);
  const auto base = analysis::verify_coherence_routed(index);

  for (const analysis::Engine engine :
       {analysis::Engine::kCdcl, analysis::Engine::kDpll}) {
    analysis::PortfolioOptions portfolio;
    portfolio.enabled = true;
    portfolio.only = engine;
    const auto forced =
        analysis::verify_coherence_routed(index, nullptr, {}, portfolio);
    EXPECT_EQ(forced.report.verdict, base.report.verdict)
        << to_string(engine);
    for (std::size_t e = 0; e < analysis::kNumEngines; ++e) {
      if (e != static_cast<std::size_t>(engine)) {
        EXPECT_EQ(forced.engine_wins[e], 0u) << to_string(engine);
      }
    }
    EXPECT_EQ(forced.engine_wins[static_cast<std::size_t>(engine)],
              forced.portfolio_races);
  }
}

TEST(PortfolioDifferential, AdversarialReductionInstancesAgree) {
  Xoshiro256ss rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    const auto cnf = sat::random_ksat(3, 1 + rng.below(4), 3, rng);
    const auto red = reductions::sat_to_vmc(cnf);
    const Execution& exec = red.instance.execution;
    const AddressIndex index(exec);
    const auto base = analysis::verify_coherence_routed(index);
    analysis::PortfolioOptions portfolio;
    portfolio.enabled = true;
    portfolio.solver.race_dpll = true;  // all four arms
    const auto raced =
        analysis::verify_coherence_routed(index, nullptr, {}, portfolio);
    EXPECT_EQ(raced.report.verdict, base.report.verdict) << "trial " << trial;
  }
}

}  // namespace
}  // namespace vermem
