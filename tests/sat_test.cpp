// Unit + property tests for the SAT substrate: CNF model, DIMACS I/O,
// CDCL solver (all feature combinations), DPLL, brute force, generators.

#include <gtest/gtest.h>

#include "sat/brute.hpp"
#include "sat/cnf.hpp"
#include "sat/dpll.hpp"
#include "sat/gen.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace vermem::sat {
namespace {

/// No-op sink so fuzz results are "used" without asserting on them.
void benchmark_guard(Status) {}

Cnf tiny_sat() {
  // (x0 | x1) & (~x0 | x1) & (~x1 | x2)  -- satisfiable, forces x1, x2.
  Cnf cnf;
  cnf.reserve_vars(3);
  cnf.add_binary(pos(0), pos(1));
  cnf.add_binary(neg(0), pos(1));
  cnf.add_binary(neg(1), pos(2));
  return cnf;
}

Cnf tiny_unsat() {
  // x0 & ~x0 via two forced chains.
  Cnf cnf;
  cnf.reserve_vars(2);
  cnf.add_unit(pos(0));
  cnf.add_binary(neg(0), pos(1));
  cnf.add_binary(neg(0), neg(1));
  return cnf;
}

TEST(Lit, PackingAndNegation) {
  const Lit l = pos(5);
  EXPECT_EQ(l.var(), 5u);
  EXPECT_FALSE(l.negated());
  EXPECT_TRUE((~l).negated());
  EXPECT_EQ(~~l, l);
  EXPECT_EQ(l.to_dimacs(), 6);
  EXPECT_EQ((~l).to_dimacs(), -6);
  EXPECT_EQ(Lit::from_dimacs(-6), ~l);
}

TEST(Cnf, SatisfiedBy) {
  const Cnf cnf = tiny_sat();
  EXPECT_TRUE(cnf.satisfied_by({false, true, true}));
  EXPECT_FALSE(cnf.satisfied_by({false, false, true}));
  EXPECT_FALSE(cnf.satisfied_by({true}));  // short model
}

TEST(Cnf, Counters) {
  const Cnf cnf = tiny_sat();
  EXPECT_EQ(cnf.num_clauses(), 3u);
  EXPECT_EQ(cnf.num_literals(), 6u);
  EXPECT_TRUE(cnf.is_ksat(2));
  EXPECT_FALSE(cnf.is_ksat(3));
}

TEST(Dimacs, RoundTrip) {
  const Cnf cnf = tiny_sat();
  const auto parsed = parse_dimacs(to_dimacs(cnf));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.cnf.num_vars, cnf.num_vars);
  EXPECT_EQ(parsed.cnf.clauses, cnf.clauses);
}

TEST(Dimacs, AcceptsCommentsAndBlankLines) {
  const auto parsed = parse_dimacs("c hello\n\np cnf 2 1\n1 -2 0\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.cnf.num_vars, 2u);
  ASSERT_EQ(parsed.cnf.num_clauses(), 1u);
}

TEST(Dimacs, RejectsMalformed) {
  EXPECT_FALSE(parse_dimacs("1 0\n").ok());             // clause before header
  EXPECT_FALSE(parse_dimacs("p cnf x 1\n").ok());       // bad header
  EXPECT_FALSE(parse_dimacs("p cnf 2 1\n1 -2\n").ok()); // unterminated clause
  EXPECT_FALSE(parse_dimacs("p cnf 2 1\n3 0\n").ok());  // var out of range
  EXPECT_FALSE(parse_dimacs("").ok());                  // empty
}

TEST(Solver, SolvesTinySat) {
  const auto result = solve(tiny_sat());
  ASSERT_EQ(result.status, Status::kSat);
  EXPECT_TRUE(tiny_sat().satisfied_by(result.model));
}

TEST(Solver, RefutesTinyUnsat) {
  EXPECT_EQ(solve(tiny_unsat()).status, Status::kUnsat);
}

TEST(Solver, EmptyFormulaIsSat) {
  EXPECT_EQ(solve(Cnf{}).status, Status::kSat);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Cnf cnf;
  cnf.reserve_vars(1);
  cnf.add_clause({});
  EXPECT_EQ(solve(cnf).status, Status::kUnsat);
}

TEST(Solver, TautologicalClauseIgnored) {
  Cnf cnf;
  cnf.reserve_vars(1);
  cnf.add_binary(pos(0), neg(0));
  EXPECT_EQ(solve(cnf).status, Status::kSat);
}

TEST(Solver, ContradictingUnitsUnsat) {
  Cnf cnf;
  cnf.reserve_vars(1);
  cnf.add_unit(pos(0));
  cnf.add_unit(neg(0));
  EXPECT_EQ(solve(cnf).status, Status::kUnsat);
}

TEST(Solver, PigeonholeUnsat) {
  for (std::size_t holes : {1, 2, 3, 4, 5}) {
    EXPECT_EQ(solve(pigeonhole(holes)).status, Status::kUnsat) << holes;
  }
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
  SolverOptions options;
  options.max_conflicts = 1;
  const auto result = solve(pigeonhole(6), options);
  // With a single allowed conflict the solver cannot finish PHP(7,6).
  EXPECT_EQ(result.status, Status::kUnknown);
}

TEST(Dpll, AgreesOnTinyInstances) {
  EXPECT_EQ(solve_dpll(tiny_sat()).status, Status::kSat);
  EXPECT_EQ(solve_dpll(tiny_unsat()).status, Status::kUnsat);
  EXPECT_EQ(solve_dpll(Cnf{}).status, Status::kSat);
}

TEST(Brute, FindsAllModelsOfXor) {
  // x0 XOR x1: (x0|x1) & (~x0|~x1) has exactly two models.
  Cnf cnf;
  cnf.reserve_vars(2);
  cnf.add_binary(pos(0), pos(1));
  cnf.add_binary(neg(0), neg(1));
  EXPECT_EQ(count_models(cnf), 2u);
  const auto model = solve_brute(cnf);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(cnf.satisfied_by(*model));
}

TEST(Generators, RandomKsatShape) {
  Xoshiro256ss rng(1);
  const Cnf cnf = random_ksat(20, 50, 3, rng);
  EXPECT_EQ(cnf.num_vars, 20u);
  EXPECT_EQ(cnf.num_clauses(), 50u);
  EXPECT_TRUE(cnf.is_ksat(3));
  for (const auto& clause : cnf.clauses) {
    EXPECT_NE(clause[0].var(), clause[1].var());
    EXPECT_NE(clause[1].var(), clause[2].var());
    EXPECT_NE(clause[0].var(), clause[2].var());
  }
}

TEST(Generators, PlantedIsSatisfiedByPlant) {
  Xoshiro256ss rng(2);
  std::vector<bool> planted;
  const Cnf cnf = planted_ksat(30, 120, 3, rng, planted);
  EXPECT_TRUE(cnf.satisfied_by(planted));
  const auto result = solve(cnf);
  EXPECT_EQ(result.status, Status::kSat);
}

TEST(Generators, PigeonholeShape) {
  const Cnf cnf = pigeonhole(3);
  EXPECT_EQ(cnf.num_vars, 12u);        // 4 pigeons x 3 holes
  EXPECT_EQ(cnf.num_clauses(), 4 + 18u);  // 4 "somewhere" + 3*C(4,2) pairs
}

// Property test: CDCL, DPLL and brute force agree on random instances, for
// every solver feature combination.
struct SolverConfig {
  bool vsids, restarts, phase_saving, minimize, watched;
};

class SolverAgreement : public ::testing::TestWithParam<SolverConfig> {};

TEST_P(SolverAgreement, MatchesBruteForceOnRandom3Sat) {
  const SolverConfig config = GetParam();
  SolverOptions options;
  options.use_vsids = config.vsids;
  options.use_restarts = config.restarts;
  options.use_phase_saving = config.phase_saving;
  options.minimize_learned = config.minimize;
  options.use_watched_literals = config.watched;

  Xoshiro256ss rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const Var nvars = static_cast<Var>(4 + rng.below(10));
    // Sweep across the under/over-constrained regimes.
    const auto nclauses = static_cast<std::size_t>(1 + rng.below(6 * nvars));
    const Cnf cnf = random_ksat(nvars, nclauses, 3, rng);
    const bool brute_sat = solve_brute(cnf).has_value();

    const auto cdcl = solve(cnf, options);
    ASSERT_NE(cdcl.status, Status::kUnknown);
    EXPECT_EQ(cdcl.status == Status::kSat, brute_sat)
        << "trial " << trial << " nvars=" << nvars << " nclauses=" << nclauses;

    const auto dpll = solve_dpll(cnf);
    EXPECT_EQ(dpll.status == Status::kSat, brute_sat);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FeatureMatrix, SolverAgreement,
    ::testing::Values(SolverConfig{true, true, true, true, true},
                      SolverConfig{false, true, true, true, true},
                      SolverConfig{true, false, true, true, true},
                      SolverConfig{true, true, false, true, true},
                      SolverConfig{true, true, true, false, true},
                      SolverConfig{true, true, true, true, false},
                      SolverConfig{false, false, false, false, false}),
    [](const ::testing::TestParamInfo<SolverConfig>& param_info) {
      const auto& c = param_info.param;
      std::string name;
      name += c.vsids ? "Vsids" : "NoVsids";
      name += c.restarts ? "Restart" : "NoRestart";
      name += c.phase_saving ? "Phase" : "NoPhase";
      name += c.minimize ? "Min" : "NoMin";
      name += c.watched ? "Watched" : "Occur";
      return name;
    });

TEST(Dimacs, FuzzedInputNeverCrashes) {
  Xoshiro256ss rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    const std::size_t len = rng.below(100);
    for (std::size_t i = 0; i < len; ++i) {
      const char* alphabet = "pcnf 0123456789-\n\t xyz";
      garbage.push_back(alphabet[rng.below(22)]);
    }
    const auto parsed = parse_dimacs(garbage);
    if (parsed.ok()) {
      // Whatever parsed must be well-formed enough to solve.
      const auto result = solve(parsed.cnf);
      benchmark_guard(result.status);
    }
  }
}

TEST(Solver, DeterministicAcrossRuns) {
  Xoshiro256ss rng(777);
  const Cnf cnf = random_ksat(40, 168, 3, rng);
  const auto a = solve(cnf);
  const auto b = solve(cnf);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.stats.conflicts, b.stats.conflicts);
  EXPECT_EQ(a.stats.decisions, b.stats.decisions);
  if (a.status == Status::kSat) {
    EXPECT_EQ(a.model, b.model);
  }
}

TEST(Solver, ModelAlwaysCoversAllVariables) {
  Xoshiro256ss rng(888);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<bool> planted;
    const Cnf cnf = planted_ksat(12, 30, 3, rng, planted);
    const auto result = solve(cnf);
    ASSERT_EQ(result.status, Status::kSat);
    EXPECT_EQ(result.model.size(), cnf.num_vars);
  }
}

TEST(Solver, StatsArePopulated) {
  const auto result = solve(pigeonhole(4));
  EXPECT_EQ(result.status, Status::kUnsat);
  EXPECT_GT(result.stats.conflicts, 0u);
  EXPECT_GT(result.stats.decisions, 0u);
  EXPECT_GT(result.stats.propagations, 0u);
  EXPECT_GT(result.stats.learned_clauses, 0u);
}

TEST(Solver, HardSatisfiableNearThreshold) {
  // Random 3-SAT at ratio 4.2 with 60 vars: solvable quickly by CDCL.
  Xoshiro256ss rng(1234);
  std::vector<bool> planted;
  const Cnf cnf = planted_ksat(60, 252, 3, rng, planted);
  const auto result = solve(cnf);
  EXPECT_EQ(result.status, Status::kSat);
}

}  // namespace
}  // namespace vermem::sat
