// Tests for the paper's reductions. The decisive checks are machine
// round-trips: for random formulas, the constructed instance must be
// coherent (respectively SC) exactly when the brute-force SAT oracle says
// the formula is satisfiable, and assignments decoded from witness
// schedules must satisfy the formula.

#include <gtest/gtest.h>

#include "encode/vmc_to_cnf.hpp"
#include "reductions/restricted.hpp"
#include "reductions/sat_to_vmc.hpp"
#include "reductions/sat_to_vscc.hpp"
#include "reductions/sync_wrap.hpp"
#include "sat/brute.hpp"
#include "sat/gen.hpp"
#include "trace/schedule.hpp"
#include "vmc/checker.hpp"
#include "vmc/exact.hpp"
#include "vsc/exact.hpp"

namespace vermem::reductions {
namespace {

using sat::Cnf;
using sat::neg;
using sat::pos;

Cnf formula_q_equals_u() {
  Cnf cnf;
  cnf.reserve_vars(1);
  cnf.add_unit(pos(0));
  return cnf;
}

// ---- Figure 4.1 / 4.2 ---------------------------------------------------

TEST(SatToVmc, Figure42Verbatim) {
  const SatToVmc red = sat_to_vmc(formula_q_equals_u());
  const Execution& exec = red.instance.execution;
  // H = {h1, h2, h_u, h_ubar, h3}, D = {d_u, d_ubar, d_c}.
  ASSERT_EQ(exec.num_processes(), 5u);
  const Value du = red.value_of_literal(pos(0));
  const Value dubar = red.value_of_literal(neg(0));
  const Value dc = red.value_of_clause(0);
  EXPECT_EQ(exec.history(red.h1).ops(), (std::vector<Operation>{W(0, du)}));
  EXPECT_EQ(exec.history(red.h2).ops(), (std::vector<Operation>{W(0, dubar)}));
  EXPECT_EQ(exec.history(red.history_of_pos_literal[0]).ops(),
            (std::vector<Operation>{R(0, du), R(0, dubar), W(0, dc)}));
  EXPECT_EQ(exec.history(red.history_of_neg_literal[0]).ops(),
            (std::vector<Operation>{R(0, dubar), R(0, du)}));
  EXPECT_EQ(exec.history(red.h3).ops(),
            (std::vector<Operation>{R(0, dc), W(0, du), W(0, dubar)}));
}

TEST(SatToVmc, SizeMatchesPaper) {
  Xoshiro256ss rng(7);
  const Cnf cnf = sat::random_ksat(10, 30, 3, rng);
  const SatToVmc red = sat_to_vmc(cnf);
  // 2m + 3 process histories.
  EXPECT_EQ(red.instance.num_histories(), 2 * 10 + 3u);
  // O(mn) operations: h1/h2 have m writes, h3 has n + 2m ops, literal
  // histories have 2 reads + their occurrence writes (3n in total).
  EXPECT_EQ(red.instance.num_operations(), 10 + 10 + (30 + 20) + (20 * 2 + 3 * 30u));
}

TEST(SatToVmc, EmptyClauseYieldsIncoherentInstance) {
  Cnf cnf;
  cnf.reserve_vars(1);
  cnf.add_clause({});
  const SatToVmc red = sat_to_vmc(cnf);
  EXPECT_EQ(vmc::check_exact(red.instance).verdict, vmc::Verdict::kIncoherent);
}

TEST(SatToVmc, RoundTripOnRandomFormulas) {
  Xoshiro256ss rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const auto nvars = static_cast<sat::Var>(3 + rng.below(3));
    const auto nclauses = static_cast<std::size_t>(1 + rng.below(10));
    const Cnf cnf = sat::random_ksat(nvars, nclauses, 2 + rng.below(2), rng);
    const bool satisfiable = sat::solve_brute(cnf).has_value();

    const SatToVmc red = sat_to_vmc(cnf);
    const auto result = vmc::check_exact(red.instance);
    ASSERT_NE(result.verdict, vmc::Verdict::kUnknown);
    EXPECT_EQ(result.verdict == vmc::Verdict::kCoherent, satisfiable)
        << "trial " << trial << "\n"
        << sat::to_dimacs(cnf);

    if (result.verdict == vmc::Verdict::kCoherent) {
      // The witness really is a coherent schedule...
      const auto valid = check_coherent_schedule(red.instance.execution, 0,
                                                 result.witness);
      EXPECT_TRUE(valid.ok) << valid.violation;
      // ...and decodes to a satisfying assignment (Lemma 4.3).
      EXPECT_TRUE(cnf.satisfied_by(red.assignment_from_schedule(result.witness)));
    }
  }
}

// ---- Figure 5.1 equivalent ---------------------------------------------

TEST(Restricted3Ops, StructuralCaps) {
  Xoshiro256ss rng(13);
  const Cnf cnf = sat::random_ksat(9, 20, 3, rng);
  const RestrictedVmc red = three_sat_to_vmc_3ops(cnf);
  EXPECT_LE(red.instance.max_ops_per_process(), 3u);
  EXPECT_LE(red.instance.max_writes_per_value(), 2u);
  EXPECT_FALSE(red.instance.all_rmw());
}

TEST(Restricted3Ops, RejectsNon3Sat) {
  Cnf cnf;
  cnf.reserve_vars(2);
  cnf.add_binary(pos(0), pos(1));
  EXPECT_THROW(three_sat_to_vmc_3ops(cnf), std::invalid_argument);
}

TEST(Restricted3Ops, RoundTripOnRandomFormulas) {
  // The 3-ops construction has O(m + n) *histories*, which blows the
  // frontier search up quickly, so the bulk of the round trip runs
  // through the (independently validated) SAT-based checker; tiny
  // formulas additionally cross-check the exact search.
  Xoshiro256ss rng(17);
  for (int trial = 0; trial < 18; ++trial) {
    const auto nvars = static_cast<sat::Var>(3 + rng.below(2));
    const auto nclauses = static_cast<std::size_t>(1 + rng.below(5));
    const Cnf cnf = sat::random_ksat(nvars, nclauses, 3, rng);
    const bool satisfiable = sat::solve_brute(cnf).has_value();

    const RestrictedVmc red = three_sat_to_vmc_3ops(cnf);
    const auto result = encode::check_via_sat(red.instance);
    ASSERT_NE(result.verdict, vmc::Verdict::kUnknown) << result.reason();
    EXPECT_EQ(result.verdict == vmc::Verdict::kCoherent, satisfiable)
        << "trial " << trial << "\n"
        << sat::to_dimacs(cnf);
    if (result.verdict == vmc::Verdict::kCoherent) {
      const auto valid = check_coherent_schedule(red.instance.execution, 0,
                                                 result.witness);
      EXPECT_TRUE(valid.ok) << valid.violation;
    }

    if (nclauses <= 2) {
      vmc::ExactOptions budget;
      budget.deadline = Deadline::after_ms(20000);
      const auto exact = vmc::check_exact(red.instance, budget);
      if (exact.verdict != vmc::Verdict::kUnknown) {
        EXPECT_EQ(exact.verdict, result.verdict);
      }
    }
  }
}

// ---- Figure 5.2 equivalent ---------------------------------------------

TEST(RestrictedRmw, StructuralCaps) {
  Xoshiro256ss rng(19);
  const Cnf cnf = sat::random_ksat(9, 20, 3, rng);
  const RestrictedVmc red = three_sat_to_vmc_rmw(cnf);
  EXPECT_TRUE(red.instance.all_rmw());
  EXPECT_LE(red.instance.max_ops_per_process(), 2u);
  EXPECT_LE(red.instance.max_writes_per_value(), 3u);
  EXPECT_TRUE(red.instance.final_value().has_value());
}

TEST(RestrictedRmw, RejectsDegenerateInput) {
  Cnf empty;
  EXPECT_THROW(three_sat_to_vmc_rmw(empty), std::invalid_argument);
}

TEST(RestrictedRmw, RoundTripOnRandomFormulas) {
  Xoshiro256ss rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const auto nvars = static_cast<sat::Var>(3 + rng.below(3));
    const auto nclauses = static_cast<std::size_t>(1 + rng.below(6));
    const Cnf cnf = sat::random_ksat(nvars, nclauses, 3, rng);
    const bool satisfiable = sat::solve_brute(cnf).has_value();

    const RestrictedVmc red = three_sat_to_vmc_rmw(cnf);
    const auto result = vmc::check_exact(red.instance);
    ASSERT_NE(result.verdict, vmc::Verdict::kUnknown);
    EXPECT_EQ(result.verdict == vmc::Verdict::kCoherent, satisfiable)
        << "trial " << trial << "\n"
        << sat::to_dimacs(cnf);
    if (result.verdict == vmc::Verdict::kCoherent) {
      const auto valid = check_coherent_schedule(red.instance.execution, 0,
                                                 result.witness);
      EXPECT_TRUE(valid.ok) << valid.violation;
    }
  }
}

// ---- Figure 6.2: SAT -> VSCC --------------------------------------------

TEST(SatToVscc, ShapeMatchesPaper) {
  Xoshiro256ss rng(29);
  const Cnf cnf = sat::random_ksat(6, 10, 3, rng);
  const SatToVscc red = sat_to_vscc(cnf);
  // 2m+3 processes, m+n+1 addresses.
  EXPECT_EQ(red.execution.num_processes(), 2 * 6 + 3u);
  EXPECT_EQ(red.execution.addresses().size(), 6 + 10 + 1u);
}

TEST(SatToVscc, CoherentByConstruction) {
  // Figure 6.3: per-address coherence holds regardless of satisfiability.
  Xoshiro256ss rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Cnf cnf =
        sat::random_ksat(static_cast<sat::Var>(3 + rng.below(3)),
                         1 + rng.below(6), 2 + rng.below(2), rng);
    const SatToVscc red = sat_to_vscc(cnf);
    const auto report = vmc::verify_coherence(red.execution);
    EXPECT_TRUE(report.coherent())
        << (report.first_violation()
                ? std::to_string(report.first_violation()->addr) + ": " +
                      report.first_violation()->result.reason()
                : "unknown");
  }
}

TEST(SatToVscc, ScIffSatisfiable) {
  Xoshiro256ss rng(37);
  for (int trial = 0; trial < 25; ++trial) {
    const auto nvars = static_cast<sat::Var>(3 + rng.below(3));
    const auto nclauses = static_cast<std::size_t>(1 + rng.below(6));
    const Cnf cnf = sat::random_ksat(nvars, nclauses, 2 + rng.below(2), rng);
    const bool satisfiable = sat::solve_brute(cnf).has_value();

    const SatToVscc red = sat_to_vscc(cnf);
    const auto result = vsc::check_sc_exact(red.execution);
    ASSERT_NE(result.verdict, vmc::Verdict::kUnknown);
    EXPECT_EQ(result.verdict == vmc::Verdict::kCoherent, satisfiable)
        << "trial " << trial << "\n"
        << sat::to_dimacs(cnf);
    if (result.verdict == vmc::Verdict::kCoherent) {
      const auto valid = check_sc_schedule(red.execution, result.witness);
      EXPECT_TRUE(valid.ok) << valid.violation;
      EXPECT_TRUE(cnf.satisfied_by(red.assignment_from_schedule(result.witness)));
    }
  }
}

// ---- Figure 6.1: synchronization wrapping --------------------------------

TEST(SyncWrap, WrapsEveryDataOp) {
  const auto exec =
      ExecutionBuilder().process(W(0, 1), R(0, 1)).process(RW(0, 1, 2)).build();
  const Execution wrapped = wrap_with_synchronization(exec, 99);
  EXPECT_EQ(wrapped.history(0).size(), 6u);
  EXPECT_EQ(wrapped.history(1).size(), 3u);
  EXPECT_EQ(wrapped.history(0)[0], Acq(99));
  EXPECT_EQ(wrapped.history(0)[1], W(0, 1));
  EXPECT_EQ(wrapped.history(0)[2], Rel(99));
}

TEST(SyncWrap, StripInvertsWrap) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), R(1, 0))
                        .process(RW(1, 0, 2))
                        .initial(1, 0)
                        .final_value(1, 2)
                        .build();
  EXPECT_EQ(strip_synchronization(wrap_with_synchronization(exec, 99), 99), exec);
}

TEST(SyncWrap, PreservesScVerdictUnderPlainSc) {
  // Under SC the sync ops are order-only, so wrapping must not change the
  // verdict of the Figure 4.1 instance.
  Xoshiro256ss rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    const Cnf cnf = sat::random_ksat(2, 1 + rng.below(4), 2, rng);
    const SatToVmc red = sat_to_vmc(cnf);
    const Execution wrapped =
        wrap_with_synchronization(red.instance.execution, 999);
    const auto plain = vmc::check_exact(red.instance);
    const auto synced = vsc::check_sc_exact(wrapped);
    EXPECT_EQ(plain.verdict, synced.verdict);
  }
}

}  // namespace
}  // namespace vermem::reductions
