// Tests for the workload generators: structural invariants, coherence/SC
// by construction (via the certificate validators, not the searchers),
// determinism, and fault-site behavior.

#include <gtest/gtest.h>

#include "trace/schedule.hpp"
#include "workload/random.hpp"

namespace vermem::workload {
namespace {

TEST(GenerateCoherent, ShapeMatchesParams) {
  Xoshiro256ss rng(1);
  SingleAddressParams params;
  params.num_histories = 5;
  params.ops_per_history = 9;
  const auto trace = generate_coherent(params, rng);
  EXPECT_EQ(trace.execution.num_processes(), 5u);
  for (const auto& history : trace.execution.histories())
    EXPECT_EQ(history.size(), 9u);
  EXPECT_EQ(trace.witness.size(), 45u);
}

TEST(GenerateCoherent, WitnessValidatesByConstruction) {
  Xoshiro256ss rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    SingleAddressParams params;
    params.num_histories = 1 + rng.below(6);
    params.ops_per_history = 1 + rng.below(12);
    params.num_values = 1 + rng.below(6);
    params.write_fraction = rng.uniform01();
    params.rmw_fraction = rng.uniform01();
    const auto trace = generate_coherent(params, rng);
    const auto valid =
        check_coherent_schedule(trace.execution, params.addr, trace.witness);
    EXPECT_TRUE(valid.ok) << valid.violation;
  }
}

TEST(GenerateCoherent, WriteOrderIsWitnessSubsequence) {
  Xoshiro256ss rng(3);
  SingleAddressParams params;
  const auto trace = generate_coherent(params, rng);
  std::size_t cursor = 0;
  for (const OpRef ref : trace.witness) {
    if (cursor < trace.write_order.size() && trace.write_order[cursor] == ref)
      ++cursor;
  }
  EXPECT_EQ(cursor, trace.write_order.size());
  for (const OpRef ref : trace.write_order)
    EXPECT_TRUE(trace.execution.op(ref).writes_memory());
}

TEST(GenerateCoherent, UniqueValueModeNeverRepeatsWrites) {
  Xoshiro256ss rng(4);
  SingleAddressParams params;
  params.num_histories = 6;
  params.ops_per_history = 20;
  params.num_values = 0;  // unique mode
  const auto trace = generate_coherent(params, rng);
  std::unordered_map<Value, int> writes;
  for (const auto& history : trace.execution.histories())
    for (const auto& op : history) {
      if (op.writes_memory()) {
        EXPECT_EQ(++writes[op.value_written], 1);
      }
    }
}

TEST(GenerateCoherent, DeterministicPerSeed) {
  SingleAddressParams params;
  Xoshiro256ss a(9), b(9), c(10);
  EXPECT_EQ(generate_coherent(params, a).execution,
            generate_coherent(params, b).execution);
  EXPECT_NE(generate_coherent(params, a).execution,
            generate_coherent(params, c).execution);
}

TEST(GenerateSc, WitnessValidatesByConstruction) {
  Xoshiro256ss rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    MultiAddressParams params;
    params.num_processes = 1 + rng.below(5);
    params.ops_per_process = 1 + rng.below(20);
    params.num_addresses = 1 + rng.below(5);
    const auto trace = generate_sc(params, rng);
    const auto valid = check_sc_schedule(trace.execution, trace.witness);
    EXPECT_TRUE(valid.ok) << valid.violation;
  }
}

TEST(GenerateSc, PerAddressWriteOrdersCoverAllWrites) {
  Xoshiro256ss rng(6);
  MultiAddressParams params;
  const auto trace = generate_sc(params, rng);
  std::size_t recorded = 0;
  for (const auto& [addr, order] : trace.write_orders) {
    recorded += order.size();
    for (const OpRef ref : order) {
      EXPECT_TRUE(trace.execution.op(ref).writes_memory());
      EXPECT_EQ(trace.execution.op(ref).addr, addr);
    }
  }
  std::size_t writes = 0;
  for (const auto& history : trace.execution.histories())
    for (const auto& op : history) writes += op.writes_memory();
  EXPECT_EQ(recorded, writes);
}

// --- Fault injection --------------------------------------------------

TEST(InjectFault, FabricatedReadAlwaysBreaksValidation) {
  Xoshiro256ss rng(7);
  SingleAddressParams params;
  const auto trace = generate_coherent(params, rng);
  const auto faulted = inject_fault(trace, Fault::kFabricatedRead, rng);
  ASSERT_TRUE(faulted.has_value());
  // The original witness can no longer validate the mutated trace.
  const auto valid = check_coherent_schedule(*faulted, params.addr, trace.witness);
  EXPECT_FALSE(valid.ok);
}

TEST(InjectFault, MutationsChangeExactlyTheTargetedSite) {
  Xoshiro256ss rng(8);
  SingleAddressParams params;
  const auto trace = generate_coherent(params, rng);
  for (const Fault f : {Fault::kStaleRead, Fault::kLostWrite,
                        Fault::kFabricatedRead}) {
    const auto faulted = inject_fault(trace, f, rng);
    if (!faulted) continue;
    // Exactly one operation differs, and only in its read value.
    std::size_t diffs = 0;
    for (std::uint32_t p = 0; p < trace.execution.num_processes(); ++p) {
      for (std::uint32_t i = 0; i < trace.execution.history(p).size(); ++i) {
        const Operation& before = trace.execution.history(p)[i];
        const Operation& after = faulted->history(p)[i];
        if (before == after) continue;
        ++diffs;
        EXPECT_EQ(before.kind, after.kind);
        EXPECT_EQ(before.addr, after.addr);
        EXPECT_EQ(before.value_written, after.value_written);
        EXPECT_NE(before.value_read, after.value_read);
      }
    }
    EXPECT_EQ(diffs, 1u) << to_string(f);
  }
}

TEST(InjectFault, ReorderSwapsAdjacentOps) {
  Xoshiro256ss rng(9);
  SingleAddressParams params;
  const auto trace = generate_coherent(params, rng);
  const auto faulted = inject_fault(trace, Fault::kReorderedOps, rng);
  ASSERT_TRUE(faulted.has_value());
  // Same multiset of operations per history.
  for (std::uint32_t p = 0; p < trace.execution.num_processes(); ++p) {
    auto before = trace.execution.history(p).ops();
    auto after = faulted->history(p).ops();
    auto key = [](const Operation& op) {
      return std::tuple(static_cast<int>(op.kind), op.addr, op.value_read,
                        op.value_written);
    };
    std::sort(before.begin(), before.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    std::sort(after.begin(), after.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    EXPECT_EQ(before, after);
  }
}

TEST(InjectFault, NoSiteReturnsNullopt) {
  // A trace with no reads has no stale-read site.
  Xoshiro256ss rng(10);
  SingleAddressParams params;
  params.num_histories = 2;
  params.ops_per_history = 3;
  params.write_fraction = 1.0;
  params.rmw_fraction = 0.0;
  const auto trace = generate_coherent(params, rng);
  EXPECT_FALSE(inject_fault(trace, Fault::kStaleRead, rng).has_value());
  EXPECT_FALSE(inject_fault(trace, Fault::kLostWrite, rng).has_value());
  EXPECT_FALSE(inject_fault(trace, Fault::kFabricatedRead, rng).has_value());
}

TEST(InjectFault, PreservesInitialAndFinalMetadata) {
  Xoshiro256ss rng(11);
  SingleAddressParams params;
  const auto trace = generate_coherent(params, rng);
  const auto faulted = inject_fault(trace, Fault::kStaleRead, rng);
  ASSERT_TRUE(faulted.has_value());
  EXPECT_EQ(faulted->initial_values(), trace.execution.initial_values());
  EXPECT_EQ(faulted->final_values(), trace.execution.final_values());
}

}  // namespace
}  // namespace vermem::workload
