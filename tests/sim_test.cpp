// Tests for the MESI multiprocessor simulator and its integration with
// the checkers: clean runs are coherent (and SC) by construction, faulty
// runs are caught, and the recorded write-order drives the polynomial
// verification path end to end.

#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "sim/program.hpp"
#include "vmc/checker.hpp"
#include "vsc/vscc.hpp"

namespace vermem::sim {
namespace {

using vmc::Verdict;

SimResult run_random(std::uint64_t seed, FaultPlan faults = {},
                     std::size_t cores = 4, std::size_t requests = 40) {
  Xoshiro256ss rng(seed);
  RandomProgramParams params;
  params.num_cores = cores;
  params.requests_per_core = requests;
  params.num_addresses = 6;
  const auto programs = random_programs(params, rng);
  SimConfig config;
  config.num_cores = cores;
  config.cache_lines = 4;  // small: forces evictions and writebacks
  config.seed = seed;
  config.faults = faults;
  return run_programs(programs, config);
}

TEST(Machine, CleanRunsAreCoherent) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const SimResult result = run_random(seed);
    EXPECT_EQ(result.stats.faults_injected, 0u);
    const auto report = vmc::verify_coherence_with_write_order(
        result.execution, result.write_orders);
    EXPECT_TRUE(report.coherent())
        << "seed " << seed << ": "
        << (report.first_violation() ? report.first_violation()->result.reason()
                                     : "undecided");
  }
}

TEST(Machine, CleanRunsAreSequentiallyConsistent) {
  // The atomic-bus MESI machine implements SC; verify with the VSCC
  // pipeline on a smaller run (the exact SC fallback must never trigger
  // on these, so keep sizes frontier-search friendly).
  const SimResult result = run_random(7, {}, /*cores=*/3, /*requests=*/15);
  vsc::VsccOptions options;
  options.write_orders = &result.write_orders;
  const auto report = vsc::check_vscc(result.execution, options);
  EXPECT_EQ(report.sc.verdict, Verdict::kCoherent) << report.sc.reason();
}

TEST(Machine, DeterministicForSameSeed) {
  const SimResult a = run_random(11), b = run_random(11);
  EXPECT_EQ(a.execution, b.execution);
  EXPECT_EQ(a.stats.hits, b.stats.hits);
  const SimResult c = run_random(12);
  EXPECT_NE(a.execution, c.execution);
}

TEST(Machine, StatsAreConsistent) {
  const SimResult result = run_random(13);
  const auto& stats = result.stats;
  EXPECT_EQ(stats.hits + stats.misses, stats.loads + stats.stores + stats.rmws);
  EXPECT_EQ(stats.misses, stats.bus_reads + stats.bus_read_exclusives);
  EXPECT_GT(stats.writebacks, 0u);  // small cache guarantees evictions
}

TEST(Machine, RecordedWriteOrderCoversAllWrites) {
  const SimResult result = run_random(17);
  std::size_t recorded = 0;
  for (const auto& [addr, order] : result.write_orders) recorded += order.size();
  std::size_t writes = 0;
  for (const auto& history : result.execution.histories())
    for (const auto& op : history) writes += op.writes_memory();
  EXPECT_EQ(recorded, writes);
}

TEST(Workloads, PingPongCounterSumsUp) {
  const auto programs = ping_pong(25);
  SimConfig config;
  config.num_cores = 2;
  config.seed = 19;
  const SimResult result = run_programs(programs, config);
  EXPECT_EQ(result.execution.final_value(0), std::optional<Value>(50));
  const auto report = vmc::verify_coherence_with_write_order(
      result.execution, result.write_orders);
  EXPECT_TRUE(report.coherent());
}

TEST(Workloads, ProducerConsumerIsCoherent) {
  const auto programs = producer_consumer(4, 10);
  SimConfig config;
  config.num_cores = 4;
  config.cache_lines = 2;
  config.seed = 23;
  const SimResult result = run_programs(programs, config);
  const auto report = vmc::verify_coherence_with_write_order(
      result.execution, result.write_orders);
  EXPECT_TRUE(report.coherent());
}

TEST(Workloads, LockContentionIsCoherent) {
  const auto programs = lock_contention(3, 8);
  SimConfig config;
  config.num_cores = 3;
  config.seed = 29;
  const SimResult result = run_programs(programs, config);
  const auto report = vmc::verify_coherence_with_write_order(
      result.execution, result.write_orders);
  EXPECT_TRUE(report.coherent());
  // Ticket counter took 3*8 increments.
  EXPECT_EQ(result.execution.final_value(0), std::optional<Value>(24));
}

struct FaultCase {
  const char* name;
  FaultPlan plan;
};

class FaultDetection : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultDetection, InjectedFaultsAreCaught) {
  // With an aggressive fault rate, at least one of several seeds must
  // both inject a fault and be flagged by the write-order checker. (A
  // single fault is not guaranteed detectable — the perturbed trace can
  // coincide with a legal one — which is why this asserts over a batch.)
  const FaultPlan plan = GetParam().plan;
  int injected_runs = 0, flagged_runs = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const SimResult result = run_random(seed, plan);
    if (result.stats.faults_injected == 0) continue;
    ++injected_runs;
    const auto report = vmc::verify_coherence_with_write_order(
        result.execution, result.write_orders);
    flagged_runs += report.verdict == Verdict::kIncoherent;
  }
  EXPECT_GT(injected_runs, 0);
  EXPECT_GT(flagged_runs, 0) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Protocol, FaultDetection,
    ::testing::Values(FaultCase{"DropInvalidation", {.drop_invalidation = 0.3}},
                      FaultCase{"StaleFill", {.stale_fill = 0.5}},
                      FaultCase{"LostWriteback", {.lost_writeback = 0.5}},
                      FaultCase{"CorruptValue", {.corrupt_value = 0.1}}),
    [](const ::testing::TestParamInfo<FaultCase>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(FaultDetection, CorruptLogFlagsTheLogNotTheMachine) {
  // A corrupted write-order log makes the *augmented* check fail even
  // though the machine ran correctly; the exact checker (no log) clears
  // the trace. This is the practical difference between "the protocol is
  // broken" and "the verification hardware is broken".
  FaultPlan plan;
  plan.corrupt_write_log = 1.0;
  bool found_divergence = false;
  for (std::uint64_t seed = 1; seed <= 8 && !found_divergence; ++seed) {
    const SimResult result =
        run_random(seed, plan, /*cores=*/3, /*requests=*/12);
    if (result.stats.faults_injected == 0) continue;
    const auto with_log = vmc::verify_coherence_with_write_order(
        result.execution, result.write_orders);
    if (with_log.verdict != Verdict::kIncoherent) continue;
    const auto exact = vmc::verify_coherence(result.execution);
    EXPECT_TRUE(exact.coherent());
    found_divergence = exact.coherent();
  }
  EXPECT_TRUE(found_divergence);
}

}  // namespace
}  // namespace vermem::sim
