// Unit tests for the support utilities: RNG, bitset, hashing, formatting,
// tables.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include <atomic>
#include <stdexcept>

#include "support/bitset.hpp"
#include "support/format.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace vermem {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256ss a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversAllResidues) {
  Xoshiro256ss rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds) {
  Xoshiro256ss rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, Uniform01HalfOpen) {
  Xoshiro256ss rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Xoshiro256ss rng(5);
  auto perm = rng.permutation(50);
  std::sort(perm.begin(), perm.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(perm[i], i);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Xoshiro256ss rng(9);
  std::vector<int> v{1, 2, 2, 3, 9, 9, 9};
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(v, sorted);
}

TEST(Bitset, SetTestReset) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_TRUE(bits.none());
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Bitset, ConstructAllOnesTrimsTail) {
  DynamicBitset bits(70, true);
  EXPECT_EQ(bits.count(), 70u);
}

TEST(Bitset, EqualityIsValueBased) {
  DynamicBitset a(100), b(100);
  a.set(3);
  b.set(3);
  EXPECT_EQ(a, b);
  b.set(99);
  EXPECT_NE(a, b);
}

TEST(Bitset, ResizePreservesLowBits) {
  DynamicBitset bits(10);
  bits.set(9);
  bits.resize(200);
  EXPECT_TRUE(bits.test(9));
  EXPECT_FALSE(bits.test(199));
}

TEST(Hash, SpanHashDiffersOnPermutation) {
  const std::vector<std::uint32_t> a{1, 2, 3}, b{3, 2, 1};
  EXPECT_NE(hash_span<std::uint32_t>(a), hash_span<std::uint32_t>(b));
}

TEST(Hash, Mix64InjectsEntropy) {
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(1), 1u);  // note: 0 is fmix64's fixpoint, by design
}

TEST(Format, SplitPreservesEmptyFields) {
  const auto fields = split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

TEST(Format, SplitWsDropsEmpty) {
  const auto fields = split_ws("  a \t b\n c  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Format, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Format, ParseI64) {
  long long v = 0;
  EXPECT_TRUE(parse_i64("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(parse_i64("12x", v));
  EXPECT_FALSE(parse_i64("", v));
}

TEST(Format, HumanCount) {
  EXPECT_EQ(human_count(1234567), "1.23M");
  EXPECT_EQ(human_count(999), "999");
}

TEST(Format, HumanNanos) {
  EXPECT_EQ(human_nanos(1.53e6), "1.53ms");
  EXPECT_EQ(human_nanos(2e9), "2.00s");
}

TEST(Table, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  EXPECT_EQ(t.rows(), 2u);
  const auto s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(Table, RejectsRaggedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(CancellableFor, RunsEverythingWithoutCancel) {
  std::vector<std::atomic<int>> hits(64);
  CancellationToken token;
  parallel_for_each_cancellable(64, 4, token, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellableFor, CancelStopsSchedulingInline) {
  // One worker runs inline, so the cutoff is exact: indices after the
  // cancelling one never start.
  std::vector<int> ran;
  CancellationToken token;
  parallel_for_each_cancellable(100, 1, token, [&](std::size_t i) {
    ran.push_back(static_cast<int>(i));
    if (i == 3) token.cancel();
  });
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellableFor, CancelStopsSchedulingAcrossThreads) {
  // With threads the cutoff is cooperative: in-flight tasks finish, but
  // the bulk of the range must never be scheduled.
  std::atomic<int> executed{0};
  CancellationToken token;
  parallel_for_each_cancellable(100000, 4, token, [&](std::size_t) {
    ++executed;
    token.cancel();
  });
  EXPECT_TRUE(token.cancelled());
  EXPECT_GE(executed.load(), 1);
  EXPECT_LT(executed.load(), 100000);
}

TEST(CancellableFor, ExceptionsStillRethrow) {
  CancellationToken token;
  EXPECT_THROW(
      parallel_for_each_cancellable(16, 4, token,
                                    [&](std::size_t i) {
                                      if (i % 2 == 0)
                                        throw std::runtime_error("boom");
                                    }),
      std::runtime_error);
}

TEST(CancellableFor, AlreadyCancelledRunsNothing) {
  std::atomic<int> executed{0};
  CancellationToken token;
  token.cancel();
  parallel_for_each_cancellable(50, 4, token, [&](std::size_t) { ++executed; });
  EXPECT_EQ(executed.load(), 0);
}

TEST(Stopwatch, Monotone) {
  Stopwatch sw;
  EXPECT_GE(sw.nanos(), 0);
  const auto first = sw.nanos();
  EXPECT_GE(sw.nanos(), first);
}

TEST(Deadline, NeverDoesNotExpire) {
  EXPECT_FALSE(Deadline::never().expired());
}

TEST(Deadline, ZeroBudgetExpiresImmediately) {
  EXPECT_TRUE(Deadline::after_ms(0).limited() == false ||
              !Deadline::after_ms(0).expired());
  // A strictly positive but tiny budget must eventually expire.
  Deadline d(std::chrono::nanoseconds(1));
  Stopwatch sw;
  while (!d.expired() && sw.seconds() < 1.0) {
  }
  EXPECT_TRUE(d.expired());
}

}  // namespace
}  // namespace vermem
