// Tests for the streaming ingestion subsystem: the binary trace format
// (trace/binary_io), the SPSC ring (stream/spsc_queue), the sharded
// pipeline (stream/verifier), and the service's verify_stream entry
// point. The differential suites pin the subsystem's core contract:
// kComplete-mode streaming produces verdicts, evidence, witnesses, and
// routing provenance identical to the batch path
// (analysis::verify_coherence_routed) by construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/router.hpp"
#include "service/service.hpp"
#include "stream/spsc_queue.hpp"
#include "stream/verifier.hpp"
#include "support/rng.hpp"
#include "trace/address_index.hpp"
#include "trace/binary_io.hpp"
#include "trace/text_io.hpp"
#include "workload/random.hpp"

namespace vermem {
namespace {

Execution parse_or_die(std::string_view text) {
  ParseResult parsed = parse_execution(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  return std::move(parsed.execution);
}

void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Minimal hand-rolled header: magic, version, flags, processes, ops,
/// empty init/final sections. Lets hardening tests splice bad bytes at
/// controlled positions.
std::string header_bytes(std::uint8_t version, std::uint8_t flags,
                         std::uint64_t processes, std::uint64_t ops) {
  std::string out(kBinaryTraceMagic.data(), kBinaryTraceMagic.size());
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(flags));
  append_varint(out, processes);
  append_varint(out, ops);
  append_varint(out, 0);  // init section
  append_varint(out, 0);  // final section
  return out;
}

// ---------------------------------------------------------------------------
// Binary format: encoding, decoding, round-trips.

TEST(BinaryFormat, MagicDetection) {
  EXPECT_TRUE(looks_like_binary_trace("VMTB"));
  EXPECT_TRUE(looks_like_binary_trace(std::string("VMTB\x01\x00", 6)));
  EXPECT_FALSE(looks_like_binary_trace("VMT"));
  EXPECT_FALSE(looks_like_binary_trace("init 0 1\n"));
  EXPECT_FALSE(looks_like_binary_trace(""));
}

TEST(BinaryFormat, RoundTripsExecutionAndWriteOrders) {
  const Execution exec = parse_or_die(
      "init 0 1\n"
      "init 7 -3\n"
      "final 0 2\n"
      "P: W(0,2) R(7,-3) Acq(1) Rel(1)\n"
      "P: R(0,1) RW(7,-3,9)\n");
  WriteOrderLog orders;
  orders[0] = {OpRef{0, 0}};
  orders[7] = {OpRef{1, 1}};

  const std::string bytes = encode_binary(exec, &orders);
  BinaryParseResult decoded = decode_binary(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_FALSE(decoded.ordered);
  EXPECT_EQ(serialize_execution(decoded.execution), serialize_execution(exec));
  EXPECT_EQ(serialize_write_orders(decoded.write_orders),
            serialize_write_orders(orders));
}

TEST(BinaryFormat, TextBinaryTextIsByteIdentical) {
  // Canonical text (sorted init/final sections, "P:" histories) must
  // survive text -> binary -> text unchanged; CI's conversion smoke step
  // asserts the same property with vermemconv.
  const std::string canonical =
      "init 0 0\n"
      "init 3 5\n"
      "final 3 6\n"
      "P: W(3,6) R(0,0)\n"
      "P: R(3,5) W(0,0)\n";
  const Execution exec = parse_or_die(canonical);
  BinaryParseResult decoded = decode_binary(encode_binary(exec));
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_EQ(serialize_execution(decoded.execution), canonical);
}

TEST(BinaryFormat, EncodingIsDeterministic) {
  const Execution exec = parse_or_die("init 2 1\nP: W(2,4) R(2,4)\n");
  EXPECT_EQ(encode_binary(exec), encode_binary(exec));
}

TEST(BinaryFormat, ExtremeAddressesAndValuesRoundTrip) {
  Execution exec;
  const Addr max_addr = ~Addr{0};
  const Value min_v = std::numeric_limits<Value>::min();
  const Value max_v = std::numeric_limits<Value>::max();
  exec.set_initial_value(max_addr, min_v);
  exec.set_final_value(max_addr, max_v);
  exec.add_history(ProcessHistory{{W(max_addr, max_v), R(max_addr, min_v)}});

  BinaryParseResult decoded = decode_binary(encode_binary(exec));
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_EQ(serialize_execution(decoded.execution), serialize_execution(exec));
}

TEST(BinaryFormat, IncrementalReaderYieldsProgramOrderRefs) {
  const Execution exec = parse_or_die(
      "P: W(0,1) R(1,0) Acq(0)\n"
      "P: R(0,1)\n");
  const std::string bytes = encode_binary(exec);
  BinaryTraceReader reader{std::string_view(bytes)};
  ASSERT_TRUE(reader.read_header()) << reader.error();
  EXPECT_EQ(reader.num_processes(), 2u);
  EXPECT_EQ(reader.total_ops(), 4u);
  EXPECT_FALSE(reader.ordered());

  std::vector<StreamEvent> events;
  StreamEvent event;
  while (reader.next(event) == BinaryTraceReader::Next::kEvent)
    events.push_back(event);
  ASSERT_TRUE(reader.ok()) << reader.error();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].ref, (OpRef{0, 0}));
  EXPECT_EQ(events[2].ref, (OpRef{0, 2}));
  EXPECT_EQ(events[3].ref, (OpRef{1, 0}));
  EXPECT_EQ(events[3].op, R(0, 1));
  EXPECT_TRUE(reader.at_clean_end());
}

TEST(BinaryFormat, StreamModeWithPrefetchMatchesMemoryMode) {
  const Execution exec = parse_or_die("init 0 0\nP: W(0,1) R(0,1)\n");
  const std::string bytes = encode_binary(exec);

  // Simulate format auto-detection: the caller consumed 4 magic bytes.
  std::istringstream in(bytes.substr(4));
  BinaryTraceReader streamed(in, bytes.substr(0, 4));
  ASSERT_TRUE(streamed.read_header()) << streamed.error();

  BinaryTraceReader memory{std::string_view(bytes)};
  ASSERT_TRUE(memory.read_header());
  EXPECT_EQ(streamed.total_ops(), memory.total_ops());
  StreamEvent a, b;
  while (memory.next(a) == BinaryTraceReader::Next::kEvent) {
    ASSERT_EQ(streamed.next(b), BinaryTraceReader::Next::kEvent);
    EXPECT_EQ(a.ref, b.ref);
    EXPECT_EQ(a.op, b.op);
  }
  EXPECT_EQ(streamed.next(b), BinaryTraceReader::Next::kEnd);
}

TEST(BinaryFormat, OrderedEncodingRoundTripsAndSetsFlag) {
  Xoshiro256ss rng(7);
  workload::MultiAddressParams params;
  params.num_processes = 3;
  params.ops_per_process = 12;
  const workload::GeneratedMultiTrace trace = workload::generate_sc(params, rng);

  const std::string bytes = encode_binary_ordered(trace.execution, trace.witness);
  ASSERT_FALSE(bytes.empty());
  BinaryParseResult decoded = decode_binary(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error;
  EXPECT_TRUE(decoded.ordered);
  EXPECT_EQ(serialize_execution(decoded.execution),
            serialize_execution(trace.execution));
}

TEST(BinaryFormat, OrderedEncoderRejectsBadInterleavings) {
  const Execution exec = parse_or_die("P: W(0,1) R(0,1)\n");
  // Wrong length.
  EXPECT_TRUE(encode_binary_ordered(exec, {OpRef{0, 0}}).empty());
  // Duplicate.
  EXPECT_TRUE(encode_binary_ordered(exec, {OpRef{0, 0}, OpRef{0, 0}}).empty());
  // Violates program order.
  EXPECT_TRUE(encode_binary_ordered(exec, {OpRef{0, 1}, OpRef{0, 0}}).empty());
  // A valid one works.
  EXPECT_FALSE(encode_binary_ordered(exec, {OpRef{0, 0}, OpRef{0, 1}}).empty());
}

// ---------------------------------------------------------------------------
// Decoder hardening: adversarial input must produce typed errors, never
// UB, a crash, or an allocation proportional to a claimed size.

TEST(BinaryHardening, EveryTruncationFailsCleanly) {
  const Execution exec = parse_or_die(
      "init 0 1\n"
      "final 0 2\n"
      "P: W(0,2) R(0,2) RW(0,2,3)\n"
      "P: R(0,1) Acq(2)\n");
  WriteOrderLog orders;
  orders[0] = {OpRef{0, 0}, OpRef{0, 2}};
  const std::string bytes = encode_binary(exec, &orders);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    BinaryParseResult decoded = decode_binary(bytes.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncation at " << len << " accepted";
    EXPECT_FALSE(decoded.error.empty());
    EXPECT_LE(decoded.byte_offset, len);
  }
  EXPECT_TRUE(decode_binary(bytes).ok());
}

TEST(BinaryHardening, SingleByteCorruptionNeverCrashes) {
  Xoshiro256ss rng(21);
  workload::MultiAddressParams params;
  params.num_processes = 3;
  params.ops_per_process = 8;
  const workload::GeneratedMultiTrace trace = workload::generate_sc(params, rng);
  const std::string bytes = encode_binary(trace.execution);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const unsigned flip : {0x01u, 0x80u, 0xffu}) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(static_cast<unsigned>(corrupt[i]) ^ flip);
      const BinaryParseResult decoded = decode_binary(corrupt);
      // Either a typed error or a (different) well-formed trace; the
      // point is the decoder survives and stays internally consistent.
      if (!decoded.ok()) {
        EXPECT_FALSE(decoded.error.empty());
      }
    }
  }
}

TEST(BinaryHardening, OversizedVarintRejected) {
  std::string bytes(kBinaryTraceMagic.data(), kBinaryTraceMagic.size());
  bytes.push_back(static_cast<char>(kBinaryTraceVersion));
  bytes.push_back('\x00');
  bytes.append(10, '\xff');  // varint longer than 64 bits
  const BinaryParseResult decoded = decode_binary(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error.find("varint"), std::string::npos) << decoded.error;
}

TEST(BinaryHardening, NonMinimalVarintRejected) {
  std::string bytes(kBinaryTraceMagic.data(), kBinaryTraceMagic.size());
  bytes.push_back(static_cast<char>(kBinaryTraceVersion));
  bytes.push_back('\x00');
  bytes.push_back('\x80');  // 0 encoded in two bytes
  bytes.push_back('\x00');
  const BinaryParseResult decoded = decode_binary(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error.find("minimal"), std::string::npos) << decoded.error;
}

TEST(BinaryHardening, DeclaredCountsBeyondLimitsRejected) {
  // A tiny file claiming 2^40 processes must be rejected from the
  // declared count alone (no allocation, no long loop).
  const std::string bytes =
      header_bytes(kBinaryTraceVersion, 0, std::uint64_t{1} << 40, 0);
  const BinaryParseResult decoded = decode_binary(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error.find("process count"), std::string::npos)
      << decoded.error;

  DecodeLimits tight;
  tight.max_ops = 4;
  std::string small = header_bytes(kBinaryTraceVersion, 0, 1, 100);
  EXPECT_FALSE(decode_binary(small, tight).ok());
}

TEST(BinaryHardening, UnknownVersionAndFlagsRejected) {
  EXPECT_FALSE(decode_binary(header_bytes(99, 0, 1, 0)).ok());
  EXPECT_FALSE(decode_binary(header_bytes(kBinaryTraceVersion, 0x80, 1, 0)).ok());
}

TEST(BinaryHardening, BlockContradictionsRejected) {
  // Process id out of range.
  std::string bad_process = header_bytes(kBinaryTraceVersion, 0, 1, 1);
  append_varint(bad_process, 3);  // block for process 2 of 1
  append_varint(bad_process, 1);
  EXPECT_FALSE(decode_binary(bad_process).ok());

  // Fewer ops than declared (terminator arrives early).
  std::string missing_ops = header_bytes(kBinaryTraceVersion, 0, 1, 2);
  append_varint(missing_ops, 0);  // terminator with 0 of 2 ops seen
  EXPECT_FALSE(decode_binary(missing_ops).ok());

  // Invalid op kind.
  std::string bad_kind = header_bytes(kBinaryTraceVersion, 0, 1, 1);
  append_varint(bad_kind, 1);  // block for process 0
  append_varint(bad_kind, 1);  // one op
  bad_kind.push_back('\x09');  // kind 9 does not exist
  EXPECT_FALSE(decode_binary(bad_kind).ok());
}

TEST(BinaryHardening, TrailingBytesRejectedByWholeBufferDecode) {
  const Execution exec = parse_or_die("P: W(0,1)\n");
  std::string bytes = encode_binary(exec);
  bytes.push_back('x');
  const BinaryParseResult decoded = decode_binary(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.error.find("trailing"), std::string::npos) << decoded.error;
}

// ---------------------------------------------------------------------------
// SPSC ring.

TEST(SpscQueue, SingleThreadedWrapAround) {
  stream::SpscRing<int> ring(4);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      int* slot = ring.begin_push();
      ASSERT_NE(slot, nullptr);
      *slot = round * 10 + i;
      ring.commit_push();
    }
    EXPECT_EQ(ring.begin_push(), nullptr);  // full
    for (int i = 0; i < 4; ++i) {
      const int* front = ring.front();
      ASSERT_NE(front, nullptr);
      EXPECT_EQ(*front, round * 10 + i);
      ring.pop();
    }
    EXPECT_EQ(ring.front(), nullptr);  // empty
  }
}

TEST(SpscQueue, TwoThreadFifoStress) {
  constexpr int kItems = 200000;
  stream::SpscRing<int> ring(64);
  std::thread producer([&] {
    for (int i = 0; i < kItems;) {
      int* slot = ring.begin_push();
      if (slot == nullptr) {
        std::this_thread::yield();
        continue;
      }
      *slot = i++;
      ring.commit_push();
    }
  });
  long long sum = 0;
  int expected = 0;
  while (expected < kItems) {
    const int* front = ring.front();
    if (front == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*front, expected) << "FIFO order broken";
    sum += *front;
    ++expected;
    ring.pop();
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
}

// ---------------------------------------------------------------------------
// Differential suite: kComplete streaming == batch routed verification.

void expect_stream_matches_batch(const Execution& exec,
                                 const WriteOrderLog* orders,
                                 const std::string& label) {
  const std::string bytes = encode_binary(exec, orders);
  stream::StreamOptions opts;
  opts.shards = 2;
  stream::StreamVerifier verifier(opts);
  BinaryTraceReader reader{std::string_view(bytes)};
  const stream::StreamResult streamed = verifier.run(reader);
  ASSERT_TRUE(streamed.ok()) << label << ": " << streamed.error;
  ASSERT_FALSE(streamed.ordered) << label;
  EXPECT_FALSE(streamed.cancelled) << label;
  EXPECT_EQ(streamed.events, exec.num_operations()) << label;

  AddressIndex index(exec);
  vmc::WriteOrderMap order_map;
  if (orders != nullptr) order_map = *orders;
  const analysis::RoutedReport batch = analysis::verify_coherence_routed(
      index, orders != nullptr ? &order_map : nullptr);

  EXPECT_EQ(streamed.report.verdict, batch.report.verdict) << label;
  EXPECT_EQ(streamed.report.first_violation_index,
            batch.report.first_violation_index)
      << label;
  ASSERT_EQ(streamed.report.addresses.size(), batch.report.addresses.size())
      << label;
  for (std::size_t i = 0; i < batch.report.addresses.size(); ++i) {
    const vmc::AddressReport& s = streamed.report.addresses[i];
    const vmc::AddressReport& b = batch.report.addresses[i];
    EXPECT_EQ(s.addr, b.addr) << label;
    EXPECT_EQ(s.result.verdict, b.result.verdict)
        << label << " @a" << b.addr;
    // Evidence identity: same kind, same fields (the rendering covers
    // every populated field).
    EXPECT_EQ(s.result.reason(), b.result.reason()) << label << " @a" << b.addr;
    // Witness identity in original coordinates.
    EXPECT_EQ(s.result.witness, b.result.witness) << label << " @a" << b.addr;
  }
  EXPECT_EQ(streamed.fragment_counts, batch.fragment_counts) << label;
  EXPECT_EQ(streamed.decider_counts, batch.decider_counts) << label;
  EXPECT_EQ(streamed.poly_routed, batch.poly_routed) << label;
  EXPECT_EQ(streamed.exact_routed, batch.exact_routed) << label;
}

TEST(StreamDifferential, MatchesBatchOnRandomScTraces) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Xoshiro256ss rng(seed);
    workload::MultiAddressParams params;
    params.num_processes = 3 + seed % 2;
    params.ops_per_process = 16;
    params.num_addresses = 1 + seed % 5;
    params.num_values = 3;
    params.rmw_fraction = seed % 3 == 0 ? 0.2 : 0.0;
    const workload::GeneratedMultiTrace trace =
        workload::generate_sc(params, rng);
    expect_stream_matches_batch(trace.execution, nullptr,
                                "sc seed " + std::to_string(seed));
  }
}

TEST(StreamDifferential, MatchesBatchOnContendedSingleAddress) {
  // Small value domain + one hot address: the regime that routes to the
  // exact frontier search, so this also pins witness translation.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Xoshiro256ss rng(seed * 97);
    workload::SingleAddressParams params;
    params.num_histories = 3;
    params.ops_per_history = 6;
    params.num_values = 2;
    params.write_fraction = 0.6;
    const workload::GeneratedTrace trace =
        workload::generate_coherent(params, rng);
    expect_stream_matches_batch(trace.execution, nullptr,
                                "contended seed " + std::to_string(seed));
  }
}

TEST(StreamDifferential, MatchesBatchOnFaultInjectedTraces) {
  using workload::Fault;
  for (const Fault fault : {Fault::kStaleRead, Fault::kLostWrite,
                            Fault::kFabricatedRead, Fault::kReorderedOps}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Xoshiro256ss rng(seed * 1031);
      workload::SingleAddressParams params;
      params.num_histories = 3;
      params.ops_per_history = 8;
      params.num_values = 3;
      const workload::GeneratedTrace trace =
          workload::generate_coherent(params, rng);
      Xoshiro256ss fault_rng(seed);
      const std::optional<Execution> faulty =
          workload::inject_fault(trace, fault, fault_rng);
      if (!faulty.has_value()) continue;
      expect_stream_matches_batch(
          *faulty, nullptr,
          std::string(to_string(fault)) + " seed " + std::to_string(seed));
    }
  }
}

TEST(StreamDifferential, MatchesBatchWithWriteOrders) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Xoshiro256ss rng(seed * 13);
    workload::MultiAddressParams params;
    params.num_processes = 4;
    params.ops_per_process = 20;
    params.num_addresses = 3;
    const workload::GeneratedMultiTrace trace =
        workload::generate_sc(params, rng);
    WriteOrderLog orders(trace.write_orders.begin(), trace.write_orders.end());
    expect_stream_matches_batch(trace.execution, &orders,
                                "wo seed " + std::to_string(seed));
  }
}

TEST(StreamDifferential, MatchesBatchOnCorruptedWriteOrders) {
  Xoshiro256ss rng(5);
  workload::MultiAddressParams params;
  params.num_processes = 3;
  params.ops_per_process = 16;
  params.num_addresses = 2;
  const workload::GeneratedMultiTrace trace = workload::generate_sc(params, rng);
  WriteOrderLog orders(trace.write_orders.begin(), trace.write_orders.end());

  // Point an entry at an operation that does not exist: both paths must
  // agree (kUnknown / invalid-write-order, identical detail).
  for (auto& [addr, order] : orders) {
    if (!order.empty()) {
      order[0] = OpRef{1000, 1000};
      break;
    }
  }
  expect_stream_matches_batch(trace.execution, &orders, "corrupt write order");

  // Reversed order: typically an order/program-order contradiction —
  // whatever the batch path says, streaming must say the same.
  WriteOrderLog reversed(trace.write_orders.begin(), trace.write_orders.end());
  for (auto& [addr, order] : reversed) std::reverse(order.begin(), order.end());
  expect_stream_matches_batch(trace.execution, &reversed, "reversed write order");
}

TEST(StreamDifferential, MatchesBatchOnSyncHeavyTraces) {
  // Acq/Rel carry no data; they must count toward ingested events and
  // program-order indices but never reach a checker shard.
  const Execution exec = parse_or_die(
      "init 0 0\n"
      "P: Acq(0) W(0,1) Rel(0) R(0,1) Acq(9)\n"
      "P: Acq(0) R(0,0) Rel(0)\n");
  expect_stream_matches_batch(exec, nullptr, "sync heavy");
}

// ---------------------------------------------------------------------------
// Ordered (online) mode.

TEST(StreamOrdered, AcceptsCoherentOrderedStream) {
  Xoshiro256ss rng(11);
  workload::MultiAddressParams params;
  params.num_processes = 4;
  params.ops_per_process = 24;
  params.num_addresses = 3;
  const workload::GeneratedMultiTrace trace = workload::generate_sc(params, rng);
  const std::string bytes =
      encode_binary_ordered(trace.execution, trace.witness);
  ASSERT_FALSE(bytes.empty());

  stream::StreamOptions opts;
  opts.shards = 2;  // mode kAuto follows the header's ordered flag
  stream::StreamVerifier verifier(opts);
  BinaryTraceReader reader{std::string_view(bytes)};
  const stream::StreamResult result = verifier.run(reader);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.ordered);
  EXPECT_EQ(result.report.verdict, vmc::Verdict::kCoherent);
  EXPECT_EQ(result.report.addresses.size(), 3u);
  EXPECT_GT(result.resident_peak_bytes, 0u);
}

TEST(StreamOrdered, FlagsViolationsWithTypedEvidence) {
  // A read of a never-written value trips the online checker.
  const Execution bad_read = parse_or_die("P: R(0,5)\n");
  const std::string bytes = encode_binary_ordered(bad_read, {OpRef{0, 0}});
  ASSERT_FALSE(bytes.empty());
  stream::StreamOptions opts;
  opts.shards = 1;
  stream::StreamVerifier verifier(opts);
  BinaryTraceReader reader{std::string_view(bytes)};
  const stream::StreamResult result = verifier.run(reader);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.ordered);
  ASSERT_EQ(result.report.verdict, vmc::Verdict::kIncoherent);
  const vmc::AddressReport* violation = result.report.first_violation();
  ASSERT_NE(violation, nullptr);
  const certify::Incoherence* evidence = violation->result.incoherence();
  ASSERT_NE(evidence, nullptr);
  EXPECT_EQ(evidence->kind, certify::IncoherenceKind::kOrderReadWindow);
  ASSERT_EQ(evidence->ops.size(), 1u);
  EXPECT_EQ(evidence->ops[0], (OpRef{0, 0}));

  // A final value nothing wrote trips the end-of-stream check.
  const Execution bad_final = parse_or_die("final 0 7\nP: W(0,1)\n");
  const std::string final_bytes = encode_binary_ordered(bad_final, {OpRef{0, 0}});
  ASSERT_FALSE(final_bytes.empty());
  stream::StreamVerifier verifier2(opts);
  BinaryTraceReader reader2{std::string_view(final_bytes)};
  const stream::StreamResult final_result = verifier2.run(reader2);
  ASSERT_EQ(final_result.report.verdict, vmc::Verdict::kIncoherent);
  const certify::Incoherence* final_evidence =
      final_result.report.first_violation()->result.incoherence();
  ASSERT_NE(final_evidence, nullptr);
  EXPECT_EQ(final_evidence->kind, certify::IncoherenceKind::kOrderFinalMismatch);
}

TEST(StreamOrdered, OrderedModeRequiresOrderedHeader) {
  const Execution exec = parse_or_die("P: W(0,1)\n");
  const std::string bytes = encode_binary(exec);  // ordered flag unset
  stream::StreamOptions opts;
  opts.shards = 1;
  opts.mode = stream::IngestMode::kOrdered;
  stream::StreamVerifier verifier(opts);
  BinaryTraceReader reader{std::string_view(bytes)};
  const stream::StreamResult result = verifier.run(reader);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.report.verdict, vmc::Verdict::kUnknown);
}

TEST(StreamOrdered, CompleteModeOverridesOrderedHeader) {
  // Forcing kComplete on an ordered stream re-sorts per-address events
  // into program order and must agree with the batch path.
  Xoshiro256ss rng(3);
  workload::MultiAddressParams params;
  params.num_processes = 3;
  params.ops_per_process = 10;
  params.num_addresses = 2;
  const workload::GeneratedMultiTrace trace = workload::generate_sc(params, rng);
  const std::string bytes =
      encode_binary_ordered(trace.execution, trace.witness);
  ASSERT_FALSE(bytes.empty());

  stream::StreamOptions opts;
  opts.shards = 2;
  opts.mode = stream::IngestMode::kComplete;
  stream::StreamVerifier verifier(opts);
  BinaryTraceReader reader{std::string_view(bytes)};
  const stream::StreamResult result = verifier.run(reader);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_FALSE(result.ordered);

  AddressIndex index(trace.execution);
  const analysis::RoutedReport batch = analysis::verify_coherence_routed(index);
  EXPECT_EQ(result.report.verdict, batch.report.verdict);
  ASSERT_EQ(result.report.addresses.size(), batch.report.addresses.size());
  for (std::size_t i = 0; i < batch.report.addresses.size(); ++i) {
    EXPECT_EQ(result.report.addresses[i].result.verdict,
              batch.report.addresses[i].result.verdict);
  }
}

// ---------------------------------------------------------------------------
// Cancellation, backpressure, errors, pooling.

TEST(StreamPipeline, ExpiredDeadlineCancelsMidStream) {
  Xoshiro256ss rng(9);
  workload::MultiAddressParams params;
  params.num_processes = 4;
  params.ops_per_process = 64;
  params.num_addresses = 4;
  const workload::GeneratedMultiTrace trace = workload::generate_sc(params, rng);
  const std::string bytes = encode_binary(trace.execution);

  stream::StreamOptions opts;
  opts.shards = 2;
  // A 1 ns budget is expired by the time the reader performs its first
  // cooperative check (a zero budget would mean "unlimited").
  opts.exact.deadline = Deadline(std::chrono::nanoseconds(1));
  stream::StreamVerifier verifier(opts);
  BinaryTraceReader reader{std::string_view(bytes)};
  const stream::StreamResult result = verifier.run(reader);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.report.verdict, vmc::Verdict::kUnknown);
  for (const vmc::AddressReport& report : result.report.addresses) {
    const certify::Unknown* why = report.result.unknown_reason();
    ASSERT_NE(why, nullptr);
    EXPECT_EQ(why->reason, certify::UnknownReason::kSkipped);
    // Identical convention to the batch router's skip path.
    EXPECT_EQ(why->detail, "deadline expired or request cancelled");
  }
}

TEST(StreamPipeline, CancellationTokenStopsIngest) {
  const Execution exec = parse_or_die("P: W(0,1) R(0,1)\n");
  const std::string bytes = encode_binary(exec);
  CancellationToken token;
  token.cancel();
  stream::StreamOptions opts;
  opts.shards = 1;
  opts.exact.cancel = &token;
  stream::StreamVerifier verifier(opts);
  BinaryTraceReader reader{std::string_view(bytes)};
  const stream::StreamResult result = verifier.run(reader);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.report.verdict, vmc::Verdict::kUnknown);
}

TEST(StreamPipeline, ShedPolicyNeverProducesWrongVerdicts) {
  Xoshiro256ss rng(17);
  workload::MultiAddressParams params;
  params.num_processes = 4;
  params.ops_per_process = 256;
  params.num_addresses = 8;
  const workload::GeneratedMultiTrace trace = workload::generate_sc(params, rng);
  const std::string bytes = encode_binary(trace.execution);

  stream::StreamOptions opts;
  opts.shards = 2;
  opts.queue_blocks = 2;  // smallest ring, maximizing shed pressure
  opts.backpressure = stream::BackpressurePolicy::kShed;
  stream::StreamVerifier verifier(opts);
  BinaryTraceReader reader{std::string_view(bytes)};
  const stream::StreamResult result = verifier.run(reader);
  ASSERT_TRUE(result.ok()) << result.error;

  // The trace is coherent by construction, so whatever was shed the
  // verdict may degrade to kUnknown but never to kIncoherent.
  EXPECT_NE(result.report.verdict, vmc::Verdict::kIncoherent);
  EXPECT_EQ(result.degraded, result.shed_events > 0);
  if (result.shed_events == 0) {
    EXPECT_EQ(result.report.verdict, vmc::Verdict::kCoherent);
  } else {
    std::uint64_t budget_addresses = 0;
    for (const vmc::AddressReport& report : result.report.addresses) {
      const certify::Unknown* why = report.result.unknown_reason();
      if (why != nullptr && why->reason == certify::UnknownReason::kBudget)
        ++budget_addresses;
    }
    EXPECT_GT(budget_addresses, 0u);
  }
}

TEST(StreamPipeline, DecodeErrorSurfacesTyped) {
  const Execution exec = parse_or_die("P: W(0,1) R(0,1) W(0,2)\n");
  const std::string bytes = encode_binary(exec);
  const std::string truncated = bytes.substr(0, bytes.size() - 2);

  stream::StreamOptions opts;
  opts.shards = 1;
  stream::StreamVerifier verifier(opts);
  std::istringstream in(truncated);
  const stream::StreamResult result = verifier.run(in);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(result.report.verdict, vmc::Verdict::kUnknown);
}

TEST(StreamPipeline, VerifierIsReusableAcrossRuns) {
  stream::StreamOptions opts;
  opts.shards = 2;
  stream::StreamVerifier verifier(opts);

  const Execution good = parse_or_die("init 0 0\nP: W(0,1)\nP: R(0,1)\n");
  const Execution bad = parse_or_die("P: R(3,9)\n");
  const std::string good_bytes = encode_binary(good);
  const std::string bad_bytes = encode_binary(bad);

  for (int round = 0; round < 3; ++round) {
    BinaryTraceReader good_reader{std::string_view(good_bytes)};
    EXPECT_EQ(verifier.run(good_reader).report.verdict,
              vmc::Verdict::kCoherent)
        << "round " << round;
    BinaryTraceReader bad_reader{std::string_view(bad_bytes)};
    EXPECT_EQ(verifier.run(bad_reader).report.verdict,
              vmc::Verdict::kIncoherent)
        << "round " << round;
  }
}

TEST(StreamPipeline, ResidentMemoryIsAccounted) {
  Xoshiro256ss rng(23);
  workload::MultiAddressParams params;
  params.num_processes = 3;
  params.ops_per_process = 64;
  params.num_addresses = 2;
  const workload::GeneratedMultiTrace trace = workload::generate_sc(params, rng);
  const std::string bytes = encode_binary(trace.execution);
  stream::StreamOptions opts;
  opts.shards = 1;
  stream::StreamVerifier verifier(opts);
  BinaryTraceReader reader{std::string_view(bytes)};
  const stream::StreamResult result = verifier.run(reader);
  ASSERT_TRUE(result.ok());
  // Queue storage alone is queue_blocks * block size; accumulation adds
  // arena high water on top.
  EXPECT_GT(result.resident_peak_bytes,
            static_cast<std::uint64_t>(opts.queue_blocks) * sizeof(stream::EventBlock));
  EXPECT_GT(result.blocks, 0u);
}

// ---------------------------------------------------------------------------
// Service entry point.

TEST(ServiceStream, StreamsVerdictsAndCountsStats) {
  service::VerificationService svc({.workers = 2});
  const Execution bad = parse_or_die("P: R(0,5)\n");
  const std::string bytes = encode_binary(bad);

  BinaryTraceReader reader{std::string_view(bytes)};
  const service::VerificationResponse response = svc.verify_stream(reader);
  EXPECT_EQ(response.verdict, vmc::Verdict::kIncoherent);
  EXPECT_FALSE(response.reason.empty());
  EXPECT_EQ(response.num_operations, 1u);
  EXPECT_EQ(response.num_addresses, 1u);

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.streamed, 1u);
  EXPECT_EQ(stats.stream_events, 1u);
  EXPECT_EQ(stats.incoherent, 1u);
  EXPECT_NE(stats.to_prometheus().find("vermem_service_streamed_total"),
            std::string::npos);
}

TEST(ServiceStream, PoolsThePipelineAcrossCalls) {
  service::VerificationService svc({.workers = 2});
  const Execution good = parse_or_die("init 0 0\nP: W(0,1)\nP: R(0,1)\n");
  const std::string bytes = encode_binary(good);
  for (int i = 0; i < 4; ++i) {
    std::istringstream in(bytes);
    const service::VerificationResponse response = svc.verify_stream(in);
    EXPECT_EQ(response.verdict, vmc::Verdict::kCoherent) << "call " << i;
  }
  EXPECT_EQ(svc.stats().streamed, 4u);
}

TEST(ServiceStream, ReportsDecodeErrorsAsUnknown) {
  service::VerificationService svc({.workers = 2});
  std::istringstream in("VMTB\x07");
  const service::VerificationResponse response = svc.verify_stream(in);
  EXPECT_EQ(response.verdict, vmc::Verdict::kUnknown);
  EXPECT_NE(response.reason.find("decode error"), std::string::npos)
      << response.reason;
}

TEST(ServiceStream, HonorsDeadline) {
  service::VerificationService svc({.workers = 2});
  const Execution good = parse_or_die("P: W(0,1)\n");
  const std::string bytes = encode_binary(good);
  service::StreamRequest request;
  request.options.exact.deadline = Deadline(std::chrono::nanoseconds(1));
  BinaryTraceReader reader{std::string_view(bytes)};
  const service::VerificationResponse response =
      svc.verify_stream(reader, std::move(request));
  EXPECT_EQ(response.verdict, vmc::Verdict::kUnknown);
  EXPECT_TRUE(response.timed_out);
}

}  // namespace
}  // namespace vermem
