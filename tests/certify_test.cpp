// Tests for the certification layer: RUP proof logging/checking, the
// naive whole-order encoding as an independent oracle, and the bounded-k
// BFS checker against the DFS exact search.

#include <gtest/gtest.h>

#include "encode/naive.hpp"
#include "encode/vmc_to_cnf.hpp"
#include "encode/vsc_to_cnf.hpp"
#include "sat/brute.hpp"
#include "sat/gen.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "trace/schedule.hpp"
#include "vmc/bounded.hpp"
#include "vmc/exact.hpp"
#include "vsc/exact.hpp"
#include "workload/random.hpp"

#include "reductions/sat_to_vscc.hpp"

namespace vermem {
namespace {

using workload::Fault;

Execution reductions_vscc(const sat::Cnf& cnf) {
  return reductions::sat_to_vscc(cnf).execution;
}

// ---- RUP proofs ----------------------------------------------------------

TEST(RupProof, PigeonholeRefutationsCheck) {
  for (const std::size_t holes : {2, 3, 4, 5}) {
    const sat::Cnf cnf = sat::pigeonhole(holes);
    sat::SolverOptions options;
    options.log_proof = true;
    const auto result = sat::solve(cnf, options);
    ASSERT_EQ(result.status, sat::Status::kUnsat);
    ASSERT_FALSE(result.proof.empty());
    EXPECT_TRUE(result.proof.back().empty());
    EXPECT_TRUE(sat::check_rup_proof(cnf, result.proof)) << "holes=" << holes;
  }
}

TEST(RupProof, RandomUnsatRefutationsCheck) {
  Xoshiro256ss rng(3);
  int unsat_seen = 0;
  for (int trial = 0; trial < 60 && unsat_seen < 15; ++trial) {
    const auto nvars = static_cast<sat::Var>(5 + rng.below(8));
    const sat::Cnf cnf = sat::random_ksat(nvars, nvars * 6, 3, rng);
    sat::SolverOptions options;
    options.log_proof = true;
    const auto result = sat::solve(cnf, options);
    if (result.status != sat::Status::kUnsat) continue;
    ++unsat_seen;
    EXPECT_TRUE(sat::check_rup_proof(cnf, result.proof));
  }
  EXPECT_GE(unsat_seen, 5);
}

TEST(RupProof, FeatureVariantsStillProduceValidProofs) {
  const sat::Cnf cnf = sat::pigeonhole(4);
  for (const bool vsids : {true, false}) {
    for (const bool minimize : {true, false}) {
      sat::SolverOptions options;
      options.log_proof = true;
      options.use_vsids = vsids;
      options.minimize_learned = minimize;
      const auto result = sat::solve(cnf, options);
      ASSERT_EQ(result.status, sat::Status::kUnsat);
      EXPECT_TRUE(sat::check_rup_proof(cnf, result.proof))
          << "vsids=" << vsids << " minimize=" << minimize;
    }
  }
}

TEST(RupProof, RejectsBogusSteps) {
  const sat::Cnf cnf = sat::pigeonhole(3);
  // A non-RUP first step: a fresh unit clause unrelated to the formula.
  sat::Proof bogus{{sat::pos(0)}, {}};
  EXPECT_FALSE(sat::check_rup_proof(cnf, bogus));
  // A proof that never derives the empty clause fails too.
  sat::SolverOptions options;
  options.log_proof = true;
  auto result = sat::solve(cnf, options);
  ASSERT_EQ(result.status, sat::Status::kUnsat);
  auto truncated = result.proof;
  truncated.pop_back();
  // Dropping the empty clause may leave a "proof" whose steps all check
  // but which concludes nothing.
  EXPECT_FALSE(sat::check_rup_proof(cnf, truncated));
}

TEST(RupProof, SatisfiableFormulaHasNoRefutation) {
  sat::Cnf cnf;
  cnf.reserve_vars(2);
  cnf.add_binary(sat::pos(0), sat::pos(1));
  // The empty clause is not RUP for a satisfiable formula.
  EXPECT_FALSE(sat::check_rup_proof(cnf, {{}}));
}

TEST(RupProof, ConflictingUnitsProofChecks) {
  sat::Cnf cnf;
  cnf.reserve_vars(1);
  cnf.add_unit(sat::pos(0));
  cnf.add_unit(sat::neg(0));
  sat::SolverOptions options;
  options.log_proof = true;
  const auto result = sat::solve(cnf, options);
  ASSERT_EQ(result.status, sat::Status::kUnsat);
  EXPECT_TRUE(sat::check_rup_proof(cnf, result.proof));
}

// ---- Naive encoding as independent oracle ---------------------------------

TEST(NaiveEncoding, AgreesWithProductionEncoderAndExact) {
  Xoshiro256ss rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 2 + rng.below(3);
    params.ops_per_history = 2 + rng.below(4);
    params.num_values = 2 + rng.below(3);
    params.rmw_fraction = rng.uniform01() * 0.4;
    const auto trace = workload::generate_coherent(params, rng);

    std::vector<Execution> cases{trace.execution};
    for (const Fault f : {Fault::kStaleRead, Fault::kLostWrite}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }
    for (const auto& exec : cases) {
      const vmc::VmcInstance instance{exec, 0};
      const auto naive = encode::check_via_sat_naive(instance);
      const auto production = encode::check_via_sat(instance);
      const auto exact = vmc::check_exact(instance);
      ASSERT_NE(naive.verdict, vmc::Verdict::kUnknown) << naive.note;
      EXPECT_EQ(naive.verdict, exact.verdict);
      EXPECT_EQ(production.verdict, exact.verdict);
      if (naive.verdict == vmc::Verdict::kCoherent) {
        const auto valid = check_coherent_schedule(exec, 0, naive.witness);
        EXPECT_TRUE(valid.ok) << valid.violation;
      }
    }
  }
}

TEST(NaiveEncoding, ProductionEncodingIsSmaller) {
  Xoshiro256ss rng(11);
  workload::SingleAddressParams params;
  params.num_histories = 4;
  params.ops_per_history = 8;
  params.write_fraction = 0.3;  // read-heavy: where the gap is largest
  const auto trace = workload::generate_coherent(params, rng);
  const vmc::VmcInstance instance{trace.execution, 0};
  const auto naive = encode::encode_vmc_naive(instance);
  const auto production = encode::encode_vmc(instance);
  EXPECT_LT(production.cnf.num_vars, naive.cnf.num_vars);
  EXPECT_LT(production.cnf.num_clauses(), naive.cnf.num_clauses());
}

TEST(NaiveEncoding, TrivialRejections) {
  const auto exec = ExecutionBuilder().process(R(0, 9)).build();
  EXPECT_EQ(encode::check_via_sat_naive({exec, 0}).verdict,
            vmc::Verdict::kIncoherent);
  const auto final_bad =
      ExecutionBuilder().process(W(0, 1)).final_value(0, 7).build();
  EXPECT_EQ(encode::check_via_sat_naive({final_bad, 0}).verdict,
            vmc::Verdict::kIncoherent);
}

// ---- Bounded-k BFS vs DFS exact -------------------------------------------

TEST(BoundedK, AgreesWithExactOnRandomTraces) {
  Xoshiro256ss rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 2 + rng.below(3);
    params.ops_per_history = 2 + rng.below(6);
    params.num_values = 2 + rng.below(3);
    params.rmw_fraction = rng.uniform01() * 0.5;
    const auto trace = workload::generate_coherent(params, rng);

    std::vector<Execution> cases{trace.execution};
    for (const Fault f : {Fault::kStaleRead, Fault::kFabricatedRead,
                          Fault::kReorderedOps}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }
    for (const auto& exec : cases) {
      const vmc::VmcInstance instance{exec, 0};
      const auto bfs = vmc::check_bounded_k(instance);
      const auto dfs = vmc::check_exact(instance);
      ASSERT_NE(bfs.verdict, vmc::Verdict::kUnknown);
      EXPECT_EQ(bfs.verdict, dfs.verdict);
      if (bfs.verdict == vmc::Verdict::kCoherent) {
        const auto valid = check_coherent_schedule(exec, 0, bfs.witness);
        EXPECT_TRUE(valid.ok) << valid.violation;
      }
    }
  }
}

TEST(BoundedK, HonorsHistoryCap) {
  const auto exec =
      ExecutionBuilder().process(W(0, 1)).process(W(0, 2)).process(R(0, 1)).build();
  vmc::BoundedKOptions options;
  options.max_histories = 2;
  EXPECT_EQ(vmc::check_bounded_k({exec, 0}, options).verdict,
            vmc::Verdict::kUnknown);
}

TEST(BoundedK, EmptyAndFinalValueEdges) {
  EXPECT_EQ(vmc::check_bounded_k({Execution{}, 0}).verdict,
            vmc::Verdict::kCoherent);
  auto exec = ExecutionBuilder().process(W(0, 1)).process(W(0, 2)).build();
  exec.set_final_value(0, 1);
  const auto result = vmc::check_bounded_k({exec, 0});
  ASSERT_EQ(result.verdict, vmc::Verdict::kCoherent);
  EXPECT_EQ(exec.op(result.witness.back()), W(0, 1));
}

TEST(BoundedK, StateBudgetYieldsUnknown) {
  Xoshiro256ss rng(17);
  workload::SingleAddressParams params;
  params.num_histories = 6;
  params.ops_per_history = 8;
  const auto trace = workload::generate_coherent(params, rng);
  vmc::BoundedKOptions options;
  options.max_states = 2;
  EXPECT_EQ(vmc::check_bounded_k({trace.execution, 0}, options).verdict,
            vmc::Verdict::kUnknown);
}

// ---- SC via SAT -----------------------------------------------------------

TEST(ScViaSat, AgreesWithExactScOnGeneratedTraces) {
  Xoshiro256ss rng(19);
  for (int trial = 0; trial < 12; ++trial) {
    workload::MultiAddressParams params;
    params.num_processes = 2 + rng.below(2);
    params.ops_per_process = 2 + rng.below(5);
    params.num_addresses = 1 + rng.below(3);
    const auto trace = workload::generate_sc(params, rng);
    const auto via_sat = encode::check_sc_via_sat(trace.execution);
    ASSERT_NE(via_sat.verdict, vmc::Verdict::kUnknown) << via_sat.note;
    EXPECT_EQ(via_sat.verdict, vmc::Verdict::kCoherent);
    const auto valid = check_sc_schedule(trace.execution, via_sat.witness);
    EXPECT_TRUE(valid.ok) << valid.violation;
  }
}

TEST(ScViaSat, RejectsClassicLitmusViolations) {
  // MP and SB shapes (non-SC but coherent) must come back unsatisfiable.
  const auto mp = ExecutionBuilder()
                      .process(W(0, 1), W(1, 1))
                      .process(R(1, 1), R(0, 0))
                      .build();
  EXPECT_EQ(encode::check_sc_via_sat(mp).verdict, vmc::Verdict::kIncoherent);
  const auto sb = ExecutionBuilder()
                      .process(W(0, 1), R(1, 0))
                      .process(W(1, 1), R(0, 0))
                      .build();
  EXPECT_EQ(encode::check_sc_via_sat(sb).verdict, vmc::Verdict::kIncoherent);
  const auto iriw = ExecutionBuilder()
                        .process(W(0, 1))
                        .process(W(1, 1))
                        .process(R(0, 1), R(1, 0))
                        .process(R(1, 1), R(0, 0))
                        .build();
  EXPECT_EQ(encode::check_sc_via_sat(iriw).verdict, vmc::Verdict::kIncoherent);
}

TEST(ScViaSat, AgreesWithExactOnVsccReductions) {
  Xoshiro256ss rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    const auto cnf = sat::random_ksat(3, 1 + rng.below(4), 3, rng);
    const bool satisfiable = sat::solve_brute(cnf).has_value();
    const auto red = reductions_vscc(cnf);
    const auto via_sat = encode::check_sc_via_sat(red);
    ASSERT_NE(via_sat.verdict, vmc::Verdict::kUnknown) << via_sat.note;
    EXPECT_EQ(via_sat.verdict == vmc::Verdict::kCoherent, satisfiable);
  }
}

TEST(ScViaSat, FinalValuesRespected) {
  auto exec = ExecutionBuilder().process(W(0, 1)).process(W(0, 2)).build();
  exec.set_final_value(0, 1);
  const auto result = encode::check_sc_via_sat(exec);
  ASSERT_EQ(result.verdict, vmc::Verdict::kCoherent);
  EXPECT_EQ(exec.op(result.witness.back()), W(0, 1));
  exec.set_final_value(0, 9);
  EXPECT_EQ(encode::check_sc_via_sat(exec).verdict, vmc::Verdict::kIncoherent);
}

TEST(ScViaSat, SyncOpsOrderOnly) {
  const auto exec = ExecutionBuilder()
                        .process(Acq(9), W(0, 1), Rel(9))
                        .process(Acq(9), R(0, 1), Rel(9))
                        .build();
  EXPECT_EQ(encode::check_sc_via_sat(exec).verdict, vmc::Verdict::kCoherent);
}

}  // namespace
}  // namespace vermem
