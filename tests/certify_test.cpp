// Tests for the certification layer: RUP proof logging/checking, the
// naive whole-order encoding as an independent oracle, the bounded-k
// BFS checker against the DFS exact search, and the first-class
// certificate layer (typed evidence, the independent certify::check()
// re-validator, and the text round-trip behind vermemcert).

#include <gtest/gtest.h>

#include "analysis/router.hpp"
#include "certify/check.hpp"
#include "certify/text.hpp"
#include "encode/naive.hpp"
#include "encode/vmc_to_cnf.hpp"
#include "encode/vsc_to_cnf.hpp"
#include "sat/brute.hpp"
#include "sat/gen.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "trace/address_index.hpp"
#include "trace/schedule.hpp"
#include "vmc/bounded.hpp"
#include "vmc/checker.hpp"
#include "vmc/exact.hpp"
#include "vmc/write_order.hpp"
#include "vsc/exact.hpp"
#include "vsc/vscc.hpp"
#include "workload/random.hpp"

#include "reductions/sat_to_vscc.hpp"

namespace vermem {
namespace {

using workload::Fault;

Execution reductions_vscc(const sat::Cnf& cnf) {
  return reductions::sat_to_vscc(cnf).execution;
}

// ---- RUP proofs ----------------------------------------------------------

TEST(RupProof, PigeonholeRefutationsCheck) {
  for (const std::size_t holes : {2, 3, 4, 5}) {
    const sat::Cnf cnf = sat::pigeonhole(holes);
    sat::SolverOptions options;
    options.log_proof = true;
    const auto result = sat::solve(cnf, options);
    ASSERT_EQ(result.status, sat::Status::kUnsat);
    ASSERT_FALSE(result.proof.empty());
    EXPECT_TRUE(result.proof.back().empty());
    EXPECT_TRUE(sat::check_rup_proof(cnf, result.proof)) << "holes=" << holes;
  }
}

TEST(RupProof, RandomUnsatRefutationsCheck) {
  Xoshiro256ss rng(3);
  int unsat_seen = 0;
  for (int trial = 0; trial < 60 && unsat_seen < 15; ++trial) {
    const auto nvars = static_cast<sat::Var>(5 + rng.below(8));
    const sat::Cnf cnf = sat::random_ksat(nvars, nvars * 6, 3, rng);
    sat::SolverOptions options;
    options.log_proof = true;
    const auto result = sat::solve(cnf, options);
    if (result.status != sat::Status::kUnsat) continue;
    ++unsat_seen;
    EXPECT_TRUE(sat::check_rup_proof(cnf, result.proof));
  }
  EXPECT_GE(unsat_seen, 5);
}

TEST(RupProof, FeatureVariantsStillProduceValidProofs) {
  const sat::Cnf cnf = sat::pigeonhole(4);
  for (const bool vsids : {true, false}) {
    for (const bool minimize : {true, false}) {
      sat::SolverOptions options;
      options.log_proof = true;
      options.use_vsids = vsids;
      options.minimize_learned = minimize;
      const auto result = sat::solve(cnf, options);
      ASSERT_EQ(result.status, sat::Status::kUnsat);
      EXPECT_TRUE(sat::check_rup_proof(cnf, result.proof))
          << "vsids=" << vsids << " minimize=" << minimize;
    }
  }
}

TEST(RupProof, RejectsBogusSteps) {
  const sat::Cnf cnf = sat::pigeonhole(3);
  // A non-RUP first step: a fresh unit clause unrelated to the formula.
  sat::Proof bogus{{sat::pos(0)}, {}};
  EXPECT_FALSE(sat::check_rup_proof(cnf, bogus));
  // A proof that never derives the empty clause fails too.
  sat::SolverOptions options;
  options.log_proof = true;
  auto result = sat::solve(cnf, options);
  ASSERT_EQ(result.status, sat::Status::kUnsat);
  auto truncated = result.proof;
  truncated.pop_back();
  // Dropping the empty clause may leave a "proof" whose steps all check
  // but which concludes nothing.
  EXPECT_FALSE(sat::check_rup_proof(cnf, truncated));
}

TEST(RupProof, SatisfiableFormulaHasNoRefutation) {
  sat::Cnf cnf;
  cnf.reserve_vars(2);
  cnf.add_binary(sat::pos(0), sat::pos(1));
  // The empty clause is not RUP for a satisfiable formula.
  EXPECT_FALSE(sat::check_rup_proof(cnf, {{}}));
}

TEST(RupProof, ConflictingUnitsProofChecks) {
  sat::Cnf cnf;
  cnf.reserve_vars(1);
  cnf.add_unit(sat::pos(0));
  cnf.add_unit(sat::neg(0));
  sat::SolverOptions options;
  options.log_proof = true;
  const auto result = sat::solve(cnf, options);
  ASSERT_EQ(result.status, sat::Status::kUnsat);
  EXPECT_TRUE(sat::check_rup_proof(cnf, result.proof));
}

// ---- Naive encoding as independent oracle ---------------------------------

TEST(NaiveEncoding, AgreesWithProductionEncoderAndExact) {
  Xoshiro256ss rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 2 + rng.below(3);
    params.ops_per_history = 2 + rng.below(4);
    params.num_values = 2 + rng.below(3);
    params.rmw_fraction = rng.uniform01() * 0.4;
    const auto trace = workload::generate_coherent(params, rng);

    std::vector<Execution> cases{trace.execution};
    for (const Fault f : {Fault::kStaleRead, Fault::kLostWrite}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }
    for (const auto& exec : cases) {
      const vmc::VmcInstance instance{exec, 0};
      const auto naive = encode::check_via_sat_naive(instance);
      const auto production = encode::check_via_sat(instance);
      const auto exact = vmc::check_exact(instance);
      ASSERT_NE(naive.verdict, vmc::Verdict::kUnknown) << naive.reason();
      EXPECT_EQ(naive.verdict, exact.verdict);
      EXPECT_EQ(production.verdict, exact.verdict);
      if (naive.verdict == vmc::Verdict::kCoherent) {
        const auto valid = check_coherent_schedule(exec, 0, naive.witness);
        EXPECT_TRUE(valid.ok) << valid.violation;
      }
    }
  }
}

TEST(NaiveEncoding, ProductionEncodingIsSmaller) {
  Xoshiro256ss rng(11);
  workload::SingleAddressParams params;
  params.num_histories = 4;
  params.ops_per_history = 8;
  params.write_fraction = 0.3;  // read-heavy: where the gap is largest
  const auto trace = workload::generate_coherent(params, rng);
  const vmc::VmcInstance instance{trace.execution, 0};
  const auto naive = encode::encode_vmc_naive(instance);
  const auto production = encode::encode_vmc(instance);
  EXPECT_LT(production.cnf.num_vars, naive.cnf.num_vars);
  EXPECT_LT(production.cnf.num_clauses(), naive.cnf.num_clauses());
}

TEST(NaiveEncoding, TrivialRejections) {
  const auto exec = ExecutionBuilder().process(R(0, 9)).build();
  EXPECT_EQ(encode::check_via_sat_naive({exec, 0}).verdict,
            vmc::Verdict::kIncoherent);
  const auto final_bad =
      ExecutionBuilder().process(W(0, 1)).final_value(0, 7).build();
  EXPECT_EQ(encode::check_via_sat_naive({final_bad, 0}).verdict,
            vmc::Verdict::kIncoherent);
}

// ---- Bounded-k BFS vs DFS exact -------------------------------------------

TEST(BoundedK, AgreesWithExactOnRandomTraces) {
  Xoshiro256ss rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 2 + rng.below(3);
    params.ops_per_history = 2 + rng.below(6);
    params.num_values = 2 + rng.below(3);
    params.rmw_fraction = rng.uniform01() * 0.5;
    const auto trace = workload::generate_coherent(params, rng);

    std::vector<Execution> cases{trace.execution};
    for (const Fault f : {Fault::kStaleRead, Fault::kFabricatedRead,
                          Fault::kReorderedOps}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }
    for (const auto& exec : cases) {
      const vmc::VmcInstance instance{exec, 0};
      const auto bfs = vmc::check_bounded_k(instance);
      const auto dfs = vmc::check_exact(instance);
      ASSERT_NE(bfs.verdict, vmc::Verdict::kUnknown);
      EXPECT_EQ(bfs.verdict, dfs.verdict);
      if (bfs.verdict == vmc::Verdict::kCoherent) {
        const auto valid = check_coherent_schedule(exec, 0, bfs.witness);
        EXPECT_TRUE(valid.ok) << valid.violation;
      }
    }
  }
}

TEST(BoundedK, HonorsHistoryCap) {
  const auto exec =
      ExecutionBuilder().process(W(0, 1)).process(W(0, 2)).process(R(0, 1)).build();
  vmc::BoundedKOptions options;
  options.max_histories = 2;
  EXPECT_EQ(vmc::check_bounded_k({exec, 0}, options).verdict,
            vmc::Verdict::kUnknown);
}

TEST(BoundedK, EmptyAndFinalValueEdges) {
  EXPECT_EQ(vmc::check_bounded_k({Execution{}, 0}).verdict,
            vmc::Verdict::kCoherent);
  auto exec = ExecutionBuilder().process(W(0, 1)).process(W(0, 2)).build();
  exec.set_final_value(0, 1);
  const auto result = vmc::check_bounded_k({exec, 0});
  ASSERT_EQ(result.verdict, vmc::Verdict::kCoherent);
  EXPECT_EQ(exec.op(result.witness.back()), W(0, 1));
}

TEST(BoundedK, StateBudgetYieldsUnknown) {
  Xoshiro256ss rng(17);
  workload::SingleAddressParams params;
  params.num_histories = 6;
  params.ops_per_history = 8;
  const auto trace = workload::generate_coherent(params, rng);
  vmc::BoundedKOptions options;
  options.max_states = 2;
  EXPECT_EQ(vmc::check_bounded_k({trace.execution, 0}, options).verdict,
            vmc::Verdict::kUnknown);
}

// ---- SC via SAT -----------------------------------------------------------

TEST(ScViaSat, AgreesWithExactScOnGeneratedTraces) {
  Xoshiro256ss rng(19);
  for (int trial = 0; trial < 12; ++trial) {
    workload::MultiAddressParams params;
    params.num_processes = 2 + rng.below(2);
    params.ops_per_process = 2 + rng.below(5);
    params.num_addresses = 1 + rng.below(3);
    const auto trace = workload::generate_sc(params, rng);
    const auto via_sat = encode::check_sc_via_sat(trace.execution);
    ASSERT_NE(via_sat.verdict, vmc::Verdict::kUnknown) << via_sat.reason();
    EXPECT_EQ(via_sat.verdict, vmc::Verdict::kCoherent);
    const auto valid = check_sc_schedule(trace.execution, via_sat.witness);
    EXPECT_TRUE(valid.ok) << valid.violation;
  }
}

TEST(ScViaSat, RejectsClassicLitmusViolations) {
  // MP and SB shapes (non-SC but coherent) must come back unsatisfiable.
  const auto mp = ExecutionBuilder()
                      .process(W(0, 1), W(1, 1))
                      .process(R(1, 1), R(0, 0))
                      .build();
  EXPECT_EQ(encode::check_sc_via_sat(mp).verdict, vmc::Verdict::kIncoherent);
  const auto sb = ExecutionBuilder()
                      .process(W(0, 1), R(1, 0))
                      .process(W(1, 1), R(0, 0))
                      .build();
  EXPECT_EQ(encode::check_sc_via_sat(sb).verdict, vmc::Verdict::kIncoherent);
  const auto iriw = ExecutionBuilder()
                        .process(W(0, 1))
                        .process(W(1, 1))
                        .process(R(0, 1), R(1, 0))
                        .process(R(1, 1), R(0, 0))
                        .build();
  EXPECT_EQ(encode::check_sc_via_sat(iriw).verdict, vmc::Verdict::kIncoherent);
}

TEST(ScViaSat, AgreesWithExactOnVsccReductions) {
  Xoshiro256ss rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    const auto cnf = sat::random_ksat(3, 1 + rng.below(4), 3, rng);
    const bool satisfiable = sat::solve_brute(cnf).has_value();
    const auto red = reductions_vscc(cnf);
    const auto via_sat = encode::check_sc_via_sat(red);
    ASSERT_NE(via_sat.verdict, vmc::Verdict::kUnknown) << via_sat.reason();
    EXPECT_EQ(via_sat.verdict == vmc::Verdict::kCoherent, satisfiable);
  }
}

TEST(ScViaSat, FinalValuesRespected) {
  auto exec = ExecutionBuilder().process(W(0, 1)).process(W(0, 2)).build();
  exec.set_final_value(0, 1);
  const auto result = encode::check_sc_via_sat(exec);
  ASSERT_EQ(result.verdict, vmc::Verdict::kCoherent);
  EXPECT_EQ(exec.op(result.witness.back()), W(0, 1));
  exec.set_final_value(0, 9);
  EXPECT_EQ(encode::check_sc_via_sat(exec).verdict, vmc::Verdict::kIncoherent);
}

TEST(ScViaSat, SyncOpsOrderOnly) {
  const auto exec = ExecutionBuilder()
                        .process(Acq(9), W(0, 1), Rel(9))
                        .process(Acq(9), R(0, 1), Rel(9))
                        .build();
  EXPECT_EQ(encode::check_sc_via_sat(exec).verdict, vmc::Verdict::kCoherent);
}

// ---- Certificate layer ----------------------------------------------------

certify::Certificate address_cert(Addr addr, const vmc::CheckResult& result) {
  return certify::from_result(certify::Scope::kAddress, addr, result);
}

certify::Certificate execution_cert(const vmc::CheckResult& result) {
  return certify::from_result(certify::Scope::kExecution, 0, result);
}

void expect_checks(const Execution& exec, const certify::Certificate& cert,
                   const std::string& what) {
  const certify::CheckOutcome outcome = certify::check(exec, cert);
  EXPECT_TRUE(outcome.ok) << what << " [" << certify::to_string(cert.evidence)
                          << "]: " << outcome.violation;
}

TEST(Certificates, HandcraftedPolyKindsCheck) {
  // One deterministic trace per polynomial evidence kind; each decides
  // kIncoherent through check_auto and its certificate re-validates.
  struct Case {
    const char* name;
    Execution exec;
    std::optional<certify::IncoherenceKind> kind;  ///< asserted when stable
  };
  std::vector<Case> cases;
  cases.push_back({"unwritten read",
                   ExecutionBuilder().process(R(0, 9)).build(),
                   certify::IncoherenceKind::kUnwrittenRead});
  cases.push_back({"unwritable final",
                   ExecutionBuilder().process(W(0, 1)).final_value(0, 7).build(),
                   certify::IncoherenceKind::kUnwritableFinal});
  cases.push_back({"read before write",
                   ExecutionBuilder().process(R(0, 5), W(0, 5)).build(),
                   certify::IncoherenceKind::kReadBeforeWrite});
  cases.push_back({"stale initial read",
                   ExecutionBuilder().process(W(0, 1), R(0, 0)).build(),
                   certify::IncoherenceKind::kStaleInitialRead});
  cases.push_back({"cluster cycle",
                   ExecutionBuilder()
                       .process(R(0, 1), R(0, 2))
                       .process(R(0, 2), R(0, 1))
                       .process(W(0, 1))
                       .process(W(0, 2))
                       .build(),
                   certify::IncoherenceKind::kClusterCycle});
  cases.push_back({"final not last",
                   ExecutionBuilder()
                       .process(W(0, 1), W(0, 2))
                       .final_value(0, 1)
                       .build(),
                   certify::IncoherenceKind::kFinalNotLast});
  // All-RMW shapes; the cascade picks the decider, so only the verdict
  // and the certificate's checkability are pinned down.
  cases.push_back({"value imbalance",
                   ExecutionBuilder().process(RW(0, 0, 1)).process(RW(0, 0, 2)).build(),
                   std::nullopt});
  cases.push_back({"chain stall",
                   ExecutionBuilder().process(RW(0, 0, 1), RW(0, 2, 3)).build(),
                   std::nullopt});
  cases.push_back({"chain end mismatch",
                   ExecutionBuilder().process(RW(0, 0, 1)).final_value(0, 0).build(),
                   std::nullopt});
  cases.push_back({"unreachable value",
                   ExecutionBuilder().process(RW(0, 0, 1)).process(RW(0, 5, 6)).build(),
                   std::nullopt});
  for (const Case& test : cases) {
    const vmc::CheckResult result = vmc::check_auto({test.exec, 0});
    ASSERT_EQ(result.verdict, vmc::Verdict::kIncoherent) << test.name;
    ASSERT_NE(result.incoherence(), nullptr) << test.name;
    if (test.kind) {
      EXPECT_EQ(result.incoherence()->kind, *test.kind) << test.name;
    }
    expect_checks(test.exec, address_cert(0, result), test.name);
  }
}

TEST(Certificates, WriteOrderKindsCheck) {
  struct Case {
    const char* name;
    Execution exec;
    vmc::WriteOrder order;
    certify::IncoherenceKind kind;
  };
  std::vector<Case> cases;
  cases.push_back({"program-order conflict",
                   ExecutionBuilder().process(W(0, 1), W(0, 2)).build(),
                   {OpRef{0, 1}, OpRef{0, 0}},
                   certify::IncoherenceKind::kOrderProgramConflict});
  cases.push_back({"rmw mismatch",
                   ExecutionBuilder().process(W(0, 1)).process(RW(0, 0, 5)).build(),
                   {OpRef{0, 0}, OpRef{1, 0}},
                   certify::IncoherenceKind::kOrderRmwMismatch});
  cases.push_back({"read window failure",
                   ExecutionBuilder().process(W(0, 1), W(0, 2), R(0, 1)).build(),
                   {OpRef{0, 0}, OpRef{0, 1}},
                   certify::IncoherenceKind::kOrderReadWindow});
  {
    auto exec = ExecutionBuilder().process(W(0, 1), W(0, 2)).final_value(0, 1).build();
    cases.push_back({"final mismatch", std::move(exec),
                     {OpRef{0, 0}, OpRef{0, 1}},
                     certify::IncoherenceKind::kOrderFinalMismatch});
  }
  for (const Case& test : cases) {
    const vmc::CheckResult result =
        vmc::check_with_write_order({test.exec, 0}, test.order);
    ASSERT_EQ(result.verdict, vmc::Verdict::kIncoherent) << test.name;
    ASSERT_NE(result.incoherence(), nullptr) << test.name;
    EXPECT_EQ(result.incoherence()->kind, test.kind) << test.name;
    expect_checks(test.exec, address_cert(0, result), test.name);
  }
}

TEST(Certificates, SatRouteCertificatesCheck) {
  // A non-trivially-refutable incoherent instance: the SAT route must
  // produce a RUP refutation the checker can replay against its own
  // re-encoding.
  const auto cycle = ExecutionBuilder()
                         .process(R(0, 1), R(0, 2))
                         .process(R(0, 2), R(0, 1))
                         .process(W(0, 1))
                         .process(W(0, 2))
                         .build();
  const vmc::CheckResult via_sat = encode::check_via_sat({cycle, 0});
  ASSERT_EQ(via_sat.verdict, vmc::Verdict::kIncoherent);
  ASSERT_NE(via_sat.incoherence(), nullptr);
  EXPECT_EQ(via_sat.incoherence()->kind, certify::IncoherenceKind::kRupRefutation);
  EXPECT_FALSE(via_sat.incoherence()->proof.empty());
  expect_checks(cycle, address_cert(0, via_sat), "vmc rup");

  // Trivially refuted instances route through typed trivial evidence.
  const auto trivial = ExecutionBuilder().process(R(0, 9)).build();
  const vmc::CheckResult refuted = encode::check_via_sat({trivial, 0});
  ASSERT_EQ(refuted.verdict, vmc::Verdict::kIncoherent);
  expect_checks(trivial, address_cert(0, refuted), "vmc trivial via sat");

  // Execution scope: a classic non-SC litmus shape via the SC encoder.
  const auto sb = ExecutionBuilder()
                      .process(W(0, 1), R(1, 0))
                      .process(W(1, 1), R(0, 0))
                      .build();
  const vmc::CheckResult sc = encode::check_sc_via_sat(sb);
  ASSERT_EQ(sc.verdict, vmc::Verdict::kIncoherent);
  ASSERT_NE(sc.incoherence(), nullptr);
  EXPECT_EQ(sc.incoherence()->kind, certify::IncoherenceKind::kRupRefutation);
  expect_checks(sb, execution_cert(sc), "sc rup");
}

TEST(Certificates, ExactSearchCertificatesCheck) {
  const auto cycle = ExecutionBuilder()
                         .process(R(0, 1), R(0, 2))
                         .process(R(0, 2), R(0, 1))
                         .process(W(0, 1))
                         .process(W(0, 2))
                         .build();
  const vmc::CheckResult exact = vmc::check_exact({cycle, 0});
  ASSERT_EQ(exact.verdict, vmc::Verdict::kIncoherent);
  ASSERT_NE(exact.incoherence(), nullptr);
  EXPECT_EQ(exact.incoherence()->kind,
            certify::IncoherenceKind::kSearchExhaustion);
  expect_checks(cycle, address_cert(0, exact), "vmc exhaustion");

  const auto sb = ExecutionBuilder()
                      .process(W(0, 1), R(1, 0))
                      .process(W(1, 1), R(0, 0))
                      .build();
  const vmc::CheckResult sc = vsc::check_sc_exact(sb);
  ASSERT_EQ(sc.verdict, vmc::Verdict::kIncoherent);
  expect_checks(sb, execution_cert(sc), "sc exhaustion");

  // A kCoherent exact result certifies through its witness schedule.
  const auto fine = ExecutionBuilder().process(W(0, 1)).process(R(0, 1)).build();
  const vmc::CheckResult coherent = vmc::check_exact({fine, 0});
  ASSERT_EQ(coherent.verdict, vmc::Verdict::kCoherent);
  expect_checks(fine, address_cert(0, coherent), "coherent witness");

  // An unknown verdict (budget) certifies vacuously but must carry a
  // typed reason.
  vmc::ExactOptions tiny;
  tiny.max_states = 1;
  const vmc::CheckResult unknown = vmc::check_exact({cycle, 0}, tiny);
  ASSERT_EQ(unknown.verdict, vmc::Verdict::kUnknown);
  ASSERT_NE(unknown.unknown_reason(), nullptr);
  expect_checks(cycle, address_cert(0, unknown), "unknown budget");
}

TEST(Certificates, RoutedRandomTracesAllCertify) {
  Xoshiro256ss rng(29);
  std::size_t incoherent_seen = 0;
  for (int trial = 0; trial < 20; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 2 + rng.below(3);
    params.ops_per_history = 2 + rng.below(5);
    params.num_values = 2 + rng.below(3);
    params.rmw_fraction = rng.uniform01() * 0.5;
    const auto trace = workload::generate_coherent(params, rng);

    std::vector<Execution> cases{trace.execution};
    for (const Fault f : {Fault::kStaleRead, Fault::kLostWrite,
                          Fault::kFabricatedRead, Fault::kReorderedOps}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }
    for (const Execution& exec : cases) {
      const analysis::RoutedReport routed =
          analysis::verify_coherence_routed(AddressIndex(exec));
      for (const auto& address : routed.report.addresses) {
        if (address.result.verdict == vmc::Verdict::kIncoherent)
          ++incoherent_seen;
        // Every verdict carries checkable typed evidence (or a witness).
        if (address.result.verdict != vmc::Verdict::kCoherent) {
          EXPECT_FALSE(std::holds_alternative<std::monostate>(
              address.result.evidence));
        }
        expect_checks(exec, address_cert(address.addr, address.result),
                      "routed address");
      }
    }
  }
  EXPECT_GT(incoherent_seen, 0u);
}

TEST(Certificates, VsccPipelineCertifies) {
  Xoshiro256ss rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    workload::MultiAddressParams params;
    params.num_processes = 2 + rng.below(2);
    params.ops_per_process = 2 + rng.below(4);
    params.num_addresses = 1 + rng.below(3);
    const auto trace = workload::generate_sc(params, rng);
    const vsc::VsccReport report = vsc::check_vscc(trace.execution);
    for (const auto& address : report.coherence.addresses)
      expect_checks(trace.execution, address_cert(address.addr, address.result),
                    "vscc address");
    expect_checks(trace.execution, execution_cert(report.sc), "vscc sc");
  }

  // A non-SC execution: the pipeline's execution-scope refutation checks.
  const auto sb = ExecutionBuilder()
                      .process(W(0, 1), R(1, 0))
                      .process(W(1, 1), R(0, 0))
                      .build();
  const vsc::VsccReport bad = vsc::check_vscc(sb);
  ASSERT_EQ(bad.sc.verdict, vmc::Verdict::kIncoherent);
  expect_checks(sb, execution_cert(bad.sc), "vscc sc refutation");
}

TEST(Certificates, MutatedCertificatesAreRejected) {
  // Gather genuine certificates from the deterministic incoherent shapes
  // plus a coherent one, then corrupt each in a kind-appropriate way and
  // require the checker to reject every mutant.
  struct Bundle {
    Execution exec;
    certify::Certificate cert;
  };
  std::vector<Bundle> bundles;
  const auto collect = [&](Execution exec) {
    const vmc::CheckResult result = vmc::check_auto({exec, 0});
    ASSERT_EQ(result.verdict, vmc::Verdict::kIncoherent);
    bundles.push_back({exec, address_cert(0, result)});
  };
  collect(ExecutionBuilder().process(R(0, 9)).build());
  collect(ExecutionBuilder().process(R(0, 5), W(0, 5)).build());
  collect(ExecutionBuilder().process(W(0, 1), R(0, 0)).build());
  collect(ExecutionBuilder()
              .process(R(0, 1), R(0, 2))
              .process(R(0, 2), R(0, 1))
              .process(W(0, 1))
              .process(W(0, 2))
              .build());
  collect(ExecutionBuilder().process(W(0, 1), W(0, 2)).final_value(0, 1).build());

  for (Bundle& bundle : bundles) {
    auto* evidence = std::get_if<certify::Incoherence>(&bundle.cert.evidence);
    ASSERT_NE(evidence, nullptr);
    const std::string name = to_string(evidence->kind);
    // Dangling operation reference.
    if (!evidence->ops.empty()) {
      certify::Certificate mutant = bundle.cert;
      std::get<certify::Incoherence>(mutant.evidence).ops[0].index = 1000000;
      EXPECT_FALSE(certify::check(bundle.exec, mutant).ok)
          << name << ": dangling ref accepted";
    }
    // Edited value claim.
    if (!evidence->values.empty()) {
      certify::Certificate mutant = bundle.cert;
      std::get<certify::Incoherence>(mutant.evidence).values[0] += 1000000;
      EXPECT_FALSE(certify::check(bundle.exec, mutant).ok)
          << name << ": edited value accepted";
    }
    // Swapped edge direction breaks program order.
    if (!evidence->edges.empty()) {
      certify::Certificate mutant = bundle.cert;
      auto& edge = std::get<certify::Incoherence>(mutant.evidence).edges[0];
      std::swap(edge.before, edge.after);
      EXPECT_FALSE(certify::check(bundle.exec, mutant).ok)
          << name << ": reversed edge accepted";
    }
    // Incoherent verdict with the evidence stripped.
    {
      certify::Certificate mutant = bundle.cert;
      mutant.evidence = std::monostate{};
      EXPECT_FALSE(certify::check(bundle.exec, mutant).ok)
          << name << ": missing evidence accepted";
    }
  }

  // RUP proof mutations: truncating the derivation or editing a clause.
  const auto cycle = ExecutionBuilder()
                         .process(R(0, 1), R(0, 2))
                         .process(R(0, 2), R(0, 1))
                         .process(W(0, 1))
                         .process(W(0, 2))
                         .build();
  const vmc::CheckResult via_sat = encode::check_via_sat({cycle, 0});
  ASSERT_EQ(via_sat.verdict, vmc::Verdict::kIncoherent);
  certify::Certificate rup = address_cert(0, via_sat);
  {
    certify::Certificate mutant = rup;
    std::get<certify::Incoherence>(mutant.evidence).proof.pop_back();
    EXPECT_FALSE(certify::check(cycle, mutant).ok) << "truncated proof accepted";
  }
  {
    certify::Certificate mutant = rup;
    std::get<certify::Incoherence>(mutant.evidence).proof.front() = {
        sat::pos(0)};
    EXPECT_FALSE(certify::check(cycle, mutant).ok) << "edited proof accepted";
  }

  // Witness mutations: truncation and claiming coherence of an
  // incoherent trace.
  const auto fine = ExecutionBuilder().process(W(0, 1)).process(R(0, 1)).build();
  const vmc::CheckResult coherent = vmc::check_exact({fine, 0});
  ASSERT_EQ(coherent.verdict, vmc::Verdict::kCoherent);
  {
    certify::Certificate mutant = address_cert(0, coherent);
    mutant.witness.pop_back();
    EXPECT_FALSE(certify::check(fine, mutant).ok) << "truncated witness accepted";
  }
  {
    certify::Certificate lie = address_cert(0, coherent);
    lie.witness = {OpRef{0, 0}};  // drop the read from the schedule
    EXPECT_FALSE(certify::check(fine, lie).ok) << "partial witness accepted";
  }
  // Write-order truncation.
  const auto two_writes = ExecutionBuilder().process(W(0, 1), W(0, 2)).build();
  const vmc::CheckResult order_result =
      vmc::check_with_write_order({two_writes, 0}, {OpRef{0, 1}, OpRef{0, 0}});
  ASSERT_EQ(order_result.verdict, vmc::Verdict::kIncoherent);
  {
    certify::Certificate mutant = address_cert(0, order_result);
    std::get<certify::Incoherence>(mutant.evidence).write_order.pop_back();
    EXPECT_FALSE(certify::check(two_writes, mutant).ok)
        << "truncated write order accepted";
  }
}

TEST(Certificates, RandomMutantsNeverUpgradeVerdicts) {
  // Adversarial sweep: randomized op/value edits on genuine incoherent
  // certificates must never make the checker accept evidence that the
  // (unchanged) trace does not support, unless the mutation happens to
  // produce another genuinely valid certificate of the same claim — the
  // claim itself (this trace is incoherent) stays true, so acceptance is
  // sound either way. Here we only require no crash and a boolean
  // verdict; soundness spot checks are above.
  Xoshiro256ss rng(37);
  const auto cycle = ExecutionBuilder()
                         .process(R(0, 1), R(0, 2))
                         .process(R(0, 2), R(0, 1))
                         .process(W(0, 1))
                         .process(W(0, 2))
                         .build();
  const vmc::CheckResult result = vmc::check_auto({cycle, 0});
  ASSERT_EQ(result.verdict, vmc::Verdict::kIncoherent);
  const certify::Certificate genuine = address_cert(0, result);
  for (int trial = 0; trial < 200; ++trial) {
    certify::Certificate mutant = genuine;
    auto& evidence = std::get<certify::Incoherence>(mutant.evidence);
    switch (rng.below(4)) {
      case 0:
        if (!evidence.edges.empty()) {
          auto& edge = evidence.edges[rng.below(evidence.edges.size())];
          edge.after.index = static_cast<std::uint32_t>(rng.below(8));
        }
        break;
      case 1:
        if (!evidence.edges.empty()) {
          auto& edge = evidence.edges[rng.below(evidence.edges.size())];
          edge.before.process = static_cast<std::uint32_t>(rng.below(8));
        }
        break;
      case 2:
        evidence.addr = static_cast<Addr>(rng.below(2));
        mutant.addr = evidence.addr;
        break;
      case 3:
        if (!evidence.edges.empty()) evidence.edges.pop_back();
        break;
    }
    const certify::CheckOutcome outcome = certify::check(cycle, mutant);
    if (outcome.ok) {
      // Acceptance is only sound if the certificate still checks against
      // the real trace semantics; re-run the strictest possible probe:
      // the evidence must still denote a genuine contradiction, which for
      // this trace means the verdict claim matches the exact decider.
      EXPECT_EQ(vmc::check_exact({cycle, 0}).verdict,
                vmc::Verdict::kIncoherent);
    }
  }
}

// ---- Text round-trip -------------------------------------------------------

TEST(CertificateText, RoundTripsEveryPayloadShape) {
  std::vector<certify::Certificate> certs;
  {
    certify::Certificate coherent;
    coherent.scope = certify::Scope::kAddress;
    coherent.addr = 3;
    coherent.verdict = vmc::Verdict::kCoherent;
    coherent.witness = {OpRef{0, 0}, OpRef{1, 2}, OpRef{0, 1}};
    certs.push_back(coherent);
  }
  {
    certify::Certificate incoherent;
    incoherent.scope = certify::Scope::kAddress;
    incoherent.addr = 7;
    incoherent.verdict = vmc::Verdict::kIncoherent;
    certify::Incoherence evidence =
        certify::read_before_write(7, OpRef{0, 1}, OpRef{0, 4}, -12);
    incoherent.evidence = evidence;
    certs.push_back(incoherent);
  }
  {
    certify::Certificate cycle;
    cycle.scope = certify::Scope::kAddress;
    cycle.addr = 0;
    cycle.verdict = vmc::Verdict::kIncoherent;
    cycle.evidence = certify::cluster_cycle(
        0, {{OpRef{0, 0}, OpRef{0, 1}}, {OpRef{1, 0}, OpRef{1, 1}}});
    certs.push_back(cycle);
  }
  {
    certify::Certificate order;
    order.scope = certify::Scope::kAddress;
    order.addr = 2;
    order.verdict = vmc::Verdict::kIncoherent;
    order.evidence = certify::order_final_mismatch(
        2, 5, 6, {OpRef{0, 0}, OpRef{1, 3}});
    certs.push_back(order);
  }
  {
    certify::Certificate rup;
    rup.scope = certify::Scope::kExecution;
    rup.verdict = vmc::Verdict::kIncoherent;
    sat::Proof proof;
    proof.push_back({sat::pos(0), sat::neg(3)});
    proof.push_back({sat::neg(1)});
    proof.push_back({});  // the empty clause
    rup.evidence = certify::rup_refutation(0, std::move(proof));
    certs.push_back(rup);
  }
  {
    certify::Certificate exhaustion;
    exhaustion.scope = certify::Scope::kAddress;
    exhaustion.addr = 1;
    exhaustion.verdict = vmc::Verdict::kIncoherent;
    exhaustion.evidence = certify::search_exhaustion(1, 42, 99);
    certs.push_back(exhaustion);
  }
  {
    certify::Certificate unknown;
    unknown.scope = certify::Scope::kExecution;
    unknown.verdict = vmc::Verdict::kUnknown;
    unknown.evidence =
        certify::Unknown{certify::UnknownReason::kBudget,
                         "state budget exhausted after 10 states"};
    certs.push_back(unknown);
  }

  const std::string text = certify::dump(certs);
  const certify::ParseResult parsed = certify::parse_certificates(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.certs.size(), certs.size());
  // dump(parse(dump(x))) == dump(x): the format is canonical.
  EXPECT_EQ(certify::dump(parsed.certs), text);
  for (std::size_t i = 0; i < certs.size(); ++i) {
    EXPECT_EQ(parsed.certs[i].scope, certs[i].scope) << i;
    EXPECT_EQ(parsed.certs[i].addr, certs[i].addr) << i;
    EXPECT_EQ(parsed.certs[i].verdict, certs[i].verdict) << i;
    EXPECT_EQ(parsed.certs[i].witness, certs[i].witness) << i;
  }
  const auto* rbw = std::get_if<certify::Incoherence>(&parsed.certs[1].evidence);
  ASSERT_NE(rbw, nullptr);
  EXPECT_EQ(rbw->kind, certify::IncoherenceKind::kReadBeforeWrite);
  EXPECT_EQ(rbw->values, (std::vector<Value>{-12}));
  EXPECT_EQ(rbw->ops, (std::vector<OpRef>{OpRef{0, 1}, OpRef{0, 4}}));
  const auto* proof = std::get_if<certify::Incoherence>(&parsed.certs[4].evidence);
  ASSERT_NE(proof, nullptr);
  ASSERT_EQ(proof->proof.size(), 3u);
  EXPECT_EQ(proof->proof[0], (sat::Clause{sat::pos(0), sat::neg(3)}));
  EXPECT_TRUE(proof->proof[2].empty());
  const auto* unk = std::get_if<certify::Unknown>(&parsed.certs[6].evidence);
  ASSERT_NE(unk, nullptr);
  EXPECT_EQ(unk->reason, certify::UnknownReason::kBudget);
  EXPECT_EQ(unk->detail, "state budget exhausted after 10 states");
}

TEST(CertificateText, CheckedAfterRoundTrip) {
  // End-to-end: a genuine certificate survives serialization and still
  // checks against the raw trace (the vermemcert pipeline in-process).
  const auto cycle = ExecutionBuilder()
                         .process(R(0, 1), R(0, 2))
                         .process(R(0, 2), R(0, 1))
                         .process(W(0, 1))
                         .process(W(0, 2))
                         .build();
  const vmc::CheckResult result = encode::check_via_sat({cycle, 0});
  ASSERT_EQ(result.verdict, vmc::Verdict::kIncoherent);
  const std::string text = certify::dump(address_cert(0, result));
  const certify::ParseResult parsed = certify::parse_certificates(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.certs.size(), 1u);
  expect_checks(cycle, parsed.certs[0], "round-tripped rup");
}

TEST(CertificateText, ExecutionScopeKeepsEvidenceAddress) {
  // An execution-scope certificate may reuse an address-level refutation
  // verbatim (the vscc path does exactly that); the text round-trip must
  // not re-anchor the evidence at the header's address 0.
  const Execution exec = ExecutionBuilder()
                             .process(W(2, 1), R(2, 2))
                             .process(W(2, 2))
                             .build();
  vmc::WriteOrderMap orders;
  orders[2] = {OpRef{1, 0}, OpRef{0, 0}};
  const vmc::CoherenceReport report =
      vmc::verify_coherence_with_write_order(exec, orders);
  ASSERT_EQ(report.verdict, vmc::Verdict::kIncoherent);
  const auto* violation = report.first_violation();
  ASSERT_NE(violation, nullptr);
  ASSERT_NE(violation->result.incoherence(), nullptr);

  certify::Certificate cert;
  cert.scope = certify::Scope::kExecution;
  cert.verdict = vmc::Verdict::kIncoherent;
  certify::Incoherence evidence = *violation->result.incoherence();
  evidence.addr = violation->addr;
  cert.evidence = std::move(evidence);
  expect_checks(exec, cert, "execution-scope order refutation");

  const std::string text = certify::dump(cert);
  EXPECT_NE(text.find("addr 2"), std::string::npos)
      << "evidence address missing from the serialized form:\n" << text;
  const certify::ParseResult parsed = certify::parse_certificates(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.certs.size(), 1u);
  const auto* round =
      std::get_if<certify::Incoherence>(&parsed.certs[0].evidence);
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->addr, 2u);
  expect_checks(exec, parsed.certs[0], "round-tripped execution scope");
}

TEST(CertificateText, RejectsMalformedInput) {
  EXPECT_FALSE(certify::parse_certificates("cert bogus 0 coherent\nend\n").ok);
  EXPECT_FALSE(certify::parse_certificates("cert address 0 maybe\nend\n").ok);
  EXPECT_FALSE(certify::parse_certificates("cert address 0 coherent\n").ok);
  EXPECT_FALSE(
      certify::parse_certificates("cert address 0 coherent\nwitness Px#1\nend\n")
          .ok);
  EXPECT_FALSE(certify::parse_certificates(
                   "cert address 0 incoherent\nincoherent no-such-kind\nend\n")
                   .ok);
  EXPECT_FALSE(certify::parse_certificates(
                   "cert execution 0 unknown\nunknown why-not\nend\n")
                   .ok);
  EXPECT_FALSE(certify::parse_certificates(
                   "cert address 0 incoherent\nincoherent rup-refutation\n"
                   "clause 1 0 2\nend\n")
                   .ok);
  // Comments and blank lines are fine.
  const certify::ParseResult ok = certify::parse_certificates(
      "# a comment\n\ncert address 0 coherent\nend\n");
  EXPECT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.certs.size(), 1u);
}

}  // namespace
}  // namespace vermem
