// Tests for the VMC checkers: the exact frontier search, the polynomial
// special cases of Figure 5.3, the write-order algorithm of Section 5.2,
// and the check_auto dispatch cascade. Every kCoherent verdict's witness
// is re-validated with the certificate checker.

#include <gtest/gtest.h>

#include "trace/schedule.hpp"
#include "vmc/checker.hpp"
#include "support/parallel.hpp"
#include "vmc/exact.hpp"
#include "vmc/exact_legacy.hpp"
#include "vmc/special.hpp"
#include "vmc/write_order.hpp"
#include "workload/random.hpp"

namespace vermem::vmc {
namespace {

using workload::Fault;
using workload::GeneratedTrace;
using workload::SingleAddressParams;

VmcInstance make(const Execution& exec, Addr addr = 0) {
  return VmcInstance{exec, addr};
}

void expect_valid_witness(const VmcInstance& instance, const CheckResult& result) {
  ASSERT_EQ(result.verdict, Verdict::kCoherent) << result.reason();
  const auto check =
      check_coherent_schedule(instance.execution, instance.addr, result.witness);
  EXPECT_TRUE(check.ok) << check.violation;
}

// ---- Paper Figure 4.2: the VMC instance for SAT instance Q = u --------

Execution figure_4_2() {
  // Values: d_u = 1, d_ubar = 2, d_c = 3.
  return ExecutionBuilder()
      .process(W(0, 1))                    // h1: W(d_u)
      .process(W(0, 2))                    // h2: W(d_ubar)
      .process(R(0, 1), R(0, 2), W(0, 3))  // h_u: R(d_u) R(d_ubar) W(d_c)
      .process(R(0, 2), R(0, 1))           // h_ubar: R(d_ubar) R(d_u)
      .process(R(0, 3), W(0, 1), W(0, 2))  // h3: R(d_c) W(d_u) W(d_ubar)
      .build();
}

TEST(Figure42, InstanceIsCoherent) {
  // Q = u is satisfiable, so a coherent schedule must exist.
  const auto instance = make(figure_4_2());
  const auto result = check_exact(instance);
  expect_valid_witness(instance, result);
}

TEST(Figure42, WduMustPrecedeWdubar) {
  // The paper: a coherent schedule exists iff W(d_u) from h1 precedes
  // W(d_ubar) from h2 — i.e. iff u is assigned true. Verify by checking
  // the witness ordering.
  const auto exec = figure_4_2();
  const auto result = check_exact(make(exec));
  ASSERT_EQ(result.verdict, Verdict::kCoherent);
  std::size_t pos_w1 = 0, pos_w2 = 0;
  for (std::size_t s = 0; s < result.witness.size(); ++s) {
    if (result.witness[s] == OpRef{0, 0}) pos_w1 = s;
    if (result.witness[s] == OpRef{1, 0}) pos_w2 = s;
  }
  EXPECT_LT(pos_w1, pos_w2);
}

TEST(Figure42, UnsatisfiableVariantIsIncoherent) {
  // Q = u AND NOT u: add a second "clause" history requiring the other
  // order as well. Encoded by also giving h_ubar a clause write that h3
  // must read: both orders of (W(d_u), W(d_ubar)) would be required.
  const auto exec =
      ExecutionBuilder()
          .process(W(0, 1))                    // h1
          .process(W(0, 2))                    // h2
          .process(R(0, 1), R(0, 2), W(0, 3))  // h_u writes d_c1 (u true)
          .process(R(0, 2), R(0, 1), W(0, 4))  // h_ubar writes d_c2 (u false)
          .process(R(0, 3), R(0, 4), W(0, 1), W(0, 2))  // h3 reads both
          .build();
  const auto result = check_exact(make(exec));
  EXPECT_EQ(result.verdict, Verdict::kIncoherent);
}

// ---- Exact checker basics ---------------------------------------------

TEST(Exact, EmptyInstanceIsCoherent) {
  const auto result = check_exact(make(Execution{}));
  EXPECT_EQ(result.verdict, Verdict::kCoherent);
  EXPECT_TRUE(result.witness.empty());
}

TEST(Exact, SingleReadOfInitialValue) {
  const auto exec = ExecutionBuilder().process(R(0, 7)).initial(0, 7).build();
  expect_valid_witness(make(exec), check_exact(make(exec)));
}

TEST(Exact, SingleReadOfWrongInitialValue) {
  const auto exec = ExecutionBuilder().process(R(0, 7)).initial(0, 3).build();
  EXPECT_EQ(check_exact(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(Exact, ReadOfNeverWrittenValue) {
  const auto exec = ExecutionBuilder().process(W(0, 1), R(0, 9)).build();
  EXPECT_EQ(check_exact(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(Exact, CrossReaderOrderConflictIsIncoherent) {
  // Classic coherence violation: two readers observe the two writes in
  // opposite orders.
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1))
                        .process(W(0, 2))
                        .process(R(0, 1), R(0, 2))
                        .process(R(0, 2), R(0, 1))
                        .build();
  EXPECT_EQ(check_exact(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(Exact, SameOrderReadersAreCoherent) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1))
                        .process(W(0, 2))
                        .process(R(0, 1), R(0, 2))
                        .process(R(0, 1), R(0, 2))
                        .build();
  expect_valid_witness(make(exec), check_exact(make(exec)));
}

TEST(Exact, FinalValueForcesWriteOrder) {
  const auto coherent = ExecutionBuilder()
                            .process(W(0, 1))
                            .process(W(0, 2))
                            .final_value(0, 1)
                            .build();
  expect_valid_witness(make(coherent), check_exact(make(coherent)));

  // Reading 2 after 1 forces W(1) before W(2), but final value says 1 last.
  const auto conflicted = ExecutionBuilder()
                              .process(W(0, 1), R(0, 2))
                              .process(W(0, 2))
                              .final_value(0, 1)
                              .build();
  EXPECT_EQ(check_exact(make(conflicted)).verdict, Verdict::kIncoherent);
}

TEST(Exact, RmwChainNeedsExactHandoff) {
  const auto exec = ExecutionBuilder()
                        .process(RW(0, 0, 1))
                        .process(RW(0, 1, 2))
                        .process(RW(0, 2, 3))
                        .build();
  expect_valid_witness(make(exec), check_exact(make(exec)));

  const auto broken = ExecutionBuilder()
                          .process(RW(0, 0, 1))
                          .process(RW(0, 0, 2))  // also claims to read initial
                          .build();
  EXPECT_EQ(check_exact(make(broken)).verdict, Verdict::kIncoherent);
}

TEST(Exact, StateBudgetYieldsUnknown) {
  // A moderately contended instance with a tiny budget must give up.
  Xoshiro256ss rng(5);
  SingleAddressParams params;
  params.num_histories = 6;
  params.ops_per_history = 8;
  const auto trace = workload::generate_coherent(params, rng);
  ExactOptions options;
  options.max_states = 1;
  const auto result = check_exact(make(trace.execution), options);
  EXPECT_EQ(result.verdict, Verdict::kUnknown);
}

TEST(Exact, RejectsMultiAddressInstance) {
  const auto exec = ExecutionBuilder().process(W(0, 1), W(1, 1)).build();
  EXPECT_EQ(check_exact(make(exec, 0)).verdict, Verdict::kUnknown);
}

TEST(Exact, AblationModesAgree) {
  Xoshiro256ss rng(17);
  SingleAddressParams params;
  params.num_histories = 3;
  params.ops_per_history = 5;
  params.num_values = 3;
  for (int trial = 0; trial < 25; ++trial) {
    const auto trace = workload::generate_coherent(params, rng);
    // Also test perturbed (possibly incoherent) variants.
    std::vector<Execution> cases{trace.execution};
    for (const Fault f : {Fault::kStaleRead, Fault::kFabricatedRead}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }
    for (const auto& exec : cases) {
      const auto instance = make(exec);
      const auto baseline = check_exact(instance);
      for (const bool eager : {true, false}) {
        for (const bool memo : {true, false}) {
          ExactOptions options;
          options.eager_reads = eager;
          options.memoize = memo;
          const auto result = check_exact(instance, options);
          EXPECT_EQ(result.verdict, baseline.verdict)
              << "eager=" << eager << " memo=" << memo;
          if (result.verdict == Verdict::kCoherent)
            expect_valid_witness(instance, result);
        }
      }
    }
  }
}

// ---- One-op-per-process (Figure 5.3 row 1) -----------------------------

TEST(OneOp, CoherentMix) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1))
                        .process(R(0, 1))
                        .process(R(0, 0))  // initial
                        .process(W(0, 2))
                        .final_value(0, 2)
                        .build();
  const auto instance = make(exec);
  const auto result = check_one_op_per_process(instance);
  expect_valid_witness(instance, result);
}

TEST(OneOp, UnreadableValue) {
  const auto exec = ExecutionBuilder().process(W(0, 1)).process(R(0, 9)).build();
  EXPECT_EQ(check_one_op_per_process(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(OneOp, FinalValueNeverWritten) {
  const auto exec =
      ExecutionBuilder().process(W(0, 1)).final_value(0, 9).build();
  EXPECT_EQ(check_one_op_per_process(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(OneOp, NotApplicableWhenHistoriesAreLong) {
  const auto exec = ExecutionBuilder().process(W(0, 1), R(0, 1)).build();
  EXPECT_EQ(check_one_op_per_process(make(exec)).verdict, Verdict::kUnknown);
}

TEST(OneOp, NotApplicableWithRmw) {
  const auto exec = ExecutionBuilder().process(RW(0, 0, 1)).build();
  EXPECT_EQ(check_one_op_per_process(make(exec)).verdict, Verdict::kUnknown);
}

TEST(OneOp, MatchesExactOnRandomInstances) {
  Xoshiro256ss rng(23);
  SingleAddressParams params;
  params.num_histories = 10;
  params.ops_per_history = 1;
  params.num_values = 3;
  params.rmw_fraction = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto trace = workload::generate_coherent(params, rng);
    std::vector<Execution> cases{trace.execution};
    for (const Fault f :
         {Fault::kStaleRead, Fault::kLostWrite, Fault::kFabricatedRead}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }
    for (const auto& exec : cases) {
      const auto instance = make(exec);
      const auto fast = check_one_op_per_process(instance);
      const auto slow = check_exact(instance);
      ASSERT_NE(fast.verdict, Verdict::kUnknown);
      EXPECT_EQ(fast.verdict, slow.verdict);
      if (fast.verdict == Verdict::kCoherent) expect_valid_witness(instance, fast);
    }
  }
}

// ---- RMW one-op (Eulerian trail) ---------------------------------------

TEST(RmwOneOp, SimpleChain) {
  const auto exec = ExecutionBuilder()
                        .process(RW(0, 0, 1))
                        .process(RW(0, 1, 2))
                        .final_value(0, 2)
                        .build();
  const auto instance = make(exec);
  expect_valid_witness(instance, check_rmw_one_op_per_process(instance));
}

TEST(RmwOneOp, BranchAndReturn) {
  // 0 -> 1 -> 0 -> 2: a vertex revisited; still a single trail.
  const auto exec = ExecutionBuilder()
                        .process(RW(0, 0, 1))
                        .process(RW(0, 1, 0))
                        .process(RW(0, 0, 2))
                        .build();
  const auto instance = make(exec);
  expect_valid_witness(instance, check_rmw_one_op_per_process(instance));
}

TEST(RmwOneOp, DisconnectedGraphIsIncoherent) {
  const auto exec = ExecutionBuilder()
                        .process(RW(0, 0, 1))
                        .process(RW(0, 5, 6))  // unreachable island
                        .build();
  EXPECT_EQ(check_rmw_one_op_per_process(make(exec)).verdict,
            Verdict::kIncoherent);
}

TEST(RmwOneOp, UnbalancedDegreesAreIncoherent) {
  // Two RMWs read 0 but only one writes it back... (0->1, 0->2).
  const auto exec = ExecutionBuilder()
                        .process(RW(0, 0, 1))
                        .process(RW(0, 0, 2))
                        .build();
  EXPECT_EQ(check_rmw_one_op_per_process(make(exec)).verdict,
            Verdict::kIncoherent);
}

TEST(RmwOneOp, FinalValueConstrainsTrailEnd) {
  const auto exec = ExecutionBuilder()
                        .process(RW(0, 0, 1))
                        .process(RW(0, 1, 2))
                        .final_value(0, 1)
                        .build();
  EXPECT_EQ(check_rmw_one_op_per_process(make(exec)).verdict,
            Verdict::kIncoherent);
}

TEST(RmwOneOp, MatchesExactOnRandomInstances) {
  Xoshiro256ss rng(31);
  SingleAddressParams params;
  params.num_histories = 8;
  params.ops_per_history = 1;
  params.num_values = 3;
  params.write_fraction = 1.0;
  params.rmw_fraction = 1.0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto trace = workload::generate_coherent(params, rng);
    std::vector<Execution> cases{trace.execution};
    if (auto faulted = workload::inject_fault(trace, Fault::kStaleRead, rng))
      cases.push_back(std::move(*faulted));
    for (const auto& exec : cases) {
      const auto instance = make(exec);
      const auto fast = check_rmw_one_op_per_process(instance);
      const auto slow = check_exact(instance);
      ASSERT_NE(fast.verdict, Verdict::kUnknown);
      EXPECT_EQ(fast.verdict, slow.verdict);
      if (fast.verdict == Verdict::kCoherent) expect_valid_witness(instance, fast);
    }
  }
}

// ---- Read-map (unique writes) ------------------------------------------

TEST(ReadMap, CoherentClusters) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), R(0, 2))
                        .process(W(0, 2))
                        .process(R(0, 0), R(0, 1))
                        .build();
  const auto instance = make(exec);
  expect_valid_witness(instance, check_read_map(instance));
}

TEST(ReadMap, CycleIsIncoherent) {
  // P0 sees 1 before 2; P1 sees 2 before 1.
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), R(0, 2))
                        .process(W(0, 2), R(0, 1))
                        .build();
  // Order: W1 .. R2 requires W2 after W1's cluster... builds a 2-cycle.
  EXPECT_EQ(check_read_map(make(exec)).verdict, Verdict::kIncoherent);
  // Cross-check with the exact solver.
  EXPECT_EQ(check_exact(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(ReadMap, ReadBeforeOwnWrite) {
  const auto exec = ExecutionBuilder().process(R(0, 1), W(0, 1)).build();
  EXPECT_EQ(check_read_map(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(ReadMap, InitialReadForcedLate) {
  const auto exec = ExecutionBuilder().process(W(0, 1), R(0, 0)).build();
  EXPECT_EQ(check_read_map(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(ReadMap, FinalValueMustBeLast) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(0, 2))
                        .final_value(0, 1)
                        .build();
  EXPECT_EQ(check_read_map(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(ReadMap, NotApplicableOnDoubleWrite) {
  const auto exec = ExecutionBuilder().process(W(0, 1)).process(W(0, 1)).build();
  EXPECT_EQ(check_read_map(make(exec)).verdict, Verdict::kUnknown);
}

TEST(ReadMap, NotApplicableWhenWritingInitialValue) {
  const auto exec = ExecutionBuilder().process(W(0, 0)).initial(0, 0).build();
  EXPECT_EQ(check_read_map(make(exec)).verdict, Verdict::kUnknown);
}

TEST(ReadMap, MatchesExactOnUniqueWriteInstances) {
  Xoshiro256ss rng(41);
  // Generate with many values so unique-write traces appear frequently;
  // skip trials where a value repeats.
  SingleAddressParams params;
  params.num_histories = 4;
  params.ops_per_history = 4;
  params.num_values = 40;
  params.rmw_fraction = 0.0;
  int tested = 0;
  for (int trial = 0; trial < 120 && tested < 30; ++trial) {
    const auto trace = workload::generate_coherent(params, rng);
    const auto instance = make(trace.execution);
    if (instance.max_writes_per_value() > 1) continue;
    ++tested;
    std::vector<Execution> cases{trace.execution};
    for (const Fault f : {Fault::kStaleRead, Fault::kReorderedOps}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }
    for (const auto& exec : cases) {
      const auto inst = make(exec);
      const auto fast = check_read_map(inst);
      if (fast.verdict == Verdict::kUnknown) continue;  // mutation broke precondition
      const auto slow = check_exact(inst);
      EXPECT_EQ(fast.verdict, slow.verdict) << fast.reason();
      if (fast.verdict == Verdict::kCoherent) expect_valid_witness(inst, fast);
    }
  }
  EXPECT_GE(tested, 10);
}

// ---- RMW read-map (forced chain) ----------------------------------------

TEST(RmwReadMap, ForcedChainCoherent) {
  const auto exec = ExecutionBuilder()
                        .process(RW(0, 0, 1), RW(0, 2, 3))
                        .process(RW(0, 1, 2))
                        .build();
  const auto instance = make(exec);
  expect_valid_witness(instance, check_rmw_read_map(instance));
}

TEST(RmwReadMap, ChainAgainstProgramOrder) {
  const auto exec = ExecutionBuilder()
                        .process(RW(0, 2, 3), RW(0, 0, 1))  // must run 2nd, 1st
                        .process(RW(0, 1, 2))
                        .build();
  EXPECT_EQ(check_rmw_read_map(make(exec)).verdict, Verdict::kIncoherent);
}

TEST(RmwReadMap, DuplicateReaderIncoherent) {
  const auto exec = ExecutionBuilder()
                        .process(RW(0, 0, 1))
                        .process(RW(0, 1, 2), RW(0, 1, 3))
                        .build();
  // Value 1 is written once but read by two RMWs: only one can follow the
  // write, so the instance is incoherent.
  EXPECT_EQ(check_rmw_read_map(make(exec)).verdict, Verdict::kIncoherent);
}

// ---- Write-order algorithm (Section 5.2) --------------------------------

TEST(WriteOrder, AcceptsGeneratingOrder) {
  Xoshiro256ss rng(51);
  SingleAddressParams params;
  const auto trace = workload::generate_coherent(params, rng);
  const auto instance = make(trace.execution);
  const auto result = check_with_write_order(instance, trace.write_order);
  expect_valid_witness(instance, result);
}

TEST(WriteOrder, RejectsOrderViolatingProgramOrder) {
  const auto exec = ExecutionBuilder().process(W(0, 1), W(0, 2)).build();
  const WriteOrder reversed{{0, 1}, {0, 0}};
  EXPECT_EQ(check_with_write_order(make(exec), reversed).verdict,
            Verdict::kIncoherent);
}

TEST(WriteOrder, RejectsIncompleteOrder) {
  const auto exec = ExecutionBuilder().process(W(0, 1), W(0, 2)).build();
  EXPECT_EQ(check_with_write_order(make(exec), {{0, 0}}).verdict,
            Verdict::kUnknown);
}

TEST(WriteOrder, ReadWindowIsBoundedByOwnNextWrite) {
  // P0: R(2) W(1). The read must precede W(1); with order [W(1), W(2)] the
  // value 2 is only available after the read's window closes.
  const auto exec =
      ExecutionBuilder().process(R(0, 2), W(0, 1)).process(W(0, 2)).build();
  const WriteOrder order{{0, 1}, {1, 0}};  // W(1) then W(2)
  EXPECT_EQ(check_with_write_order(make(exec), order).verdict,
            Verdict::kIncoherent);
  const WriteOrder good{{1, 0}, {0, 1}};  // W(2) then W(1)
  const auto result = check_with_write_order(make(exec), good);
  expect_valid_witness(make(exec), result);
}

TEST(WriteOrder, RmwReadComponentPinned) {
  const auto exec =
      ExecutionBuilder().process(RW(0, 0, 1)).process(RW(0, 1, 2)).build();
  const WriteOrder good{{0, 0}, {1, 0}};
  expect_valid_witness(make(exec), check_with_write_order(make(exec), good));
  const WriteOrder bad{{1, 0}, {0, 0}};
  EXPECT_EQ(check_with_write_order(make(exec), bad).verdict,
            Verdict::kIncoherent);
}

TEST(WriteOrder, FinalValueChecked) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1))
                        .process(W(0, 2))
                        .final_value(0, 2)
                        .build();
  EXPECT_EQ(
      check_with_write_order(make(exec), {{1, 0}, {0, 0}}).verdict,
      Verdict::kIncoherent);
  expect_valid_witness(make(exec),
                       check_with_write_order(make(exec), {{0, 0}, {1, 0}}));
}

TEST(WriteOrder, ExtractRoundTripsThroughWitness) {
  Xoshiro256ss rng(61);
  SingleAddressParams params;
  params.num_histories = 5;
  for (int trial = 0; trial < 20; ++trial) {
    const auto trace = workload::generate_coherent(params, rng);
    const auto instance = make(trace.execution);
    const auto exact = check_exact(instance);
    ASSERT_EQ(exact.verdict, Verdict::kCoherent);
    // The write-order of the exact checker's own witness must verify.
    const auto order = extract_write_order(instance, exact.witness);
    const auto replay = check_with_write_order(instance, order);
    expect_valid_witness(instance, replay);
  }
}

TEST(WriteOrder, SoundWithRespectToExactOnFaultyTraces) {
  // If the write-order checker accepts, the instance is coherent; if the
  // exact checker says incoherent, the write-order checker must reject.
  Xoshiro256ss rng(71);
  SingleAddressParams params;
  params.num_histories = 4;
  params.ops_per_history = 6;
  for (int trial = 0; trial < 40; ++trial) {
    const auto trace = workload::generate_coherent(params, rng);
    for (const Fault f : {Fault::kStaleRead, Fault::kLostWrite,
                          Fault::kFabricatedRead, Fault::kReorderedOps}) {
      auto faulted = workload::inject_fault(trace, f, rng);
      if (!faulted) continue;
      const auto instance = make(*faulted);
      const auto with_order = check_with_write_order(instance, trace.write_order);
      const auto exact = check_exact(instance);
      if (with_order.verdict == Verdict::kCoherent) {
        EXPECT_EQ(exact.verdict, Verdict::kCoherent) << to_string(f);
        expect_valid_witness(instance, with_order);
      }
      if (exact.verdict == Verdict::kIncoherent) {
        EXPECT_NE(with_order.verdict, Verdict::kCoherent) << to_string(f);
      }
    }
  }
}

TEST(RmwWriteOrder, TotalOrderScan) {
  const auto exec = ExecutionBuilder()
                        .process(RW(0, 0, 1), RW(0, 2, 0))
                        .process(RW(0, 1, 2))
                        .build();
  const WriteOrder order{{0, 0}, {1, 0}, {0, 1}};
  const auto instance = make(exec);
  expect_valid_witness(instance, check_rmw_with_write_order(instance, order));
  const WriteOrder bad{{0, 0}, {0, 1}, {1, 0}};
  EXPECT_EQ(check_rmw_with_write_order(instance, bad).verdict,
            Verdict::kIncoherent);
}

TEST(RmwWriteOrder, NotApplicableWithPureOps) {
  const auto exec = ExecutionBuilder().process(W(0, 1)).build();
  EXPECT_EQ(check_rmw_with_write_order(make(exec), {{0, 0}}).verdict,
            Verdict::kUnknown);
}

// ---- Dispatch + whole-execution API -------------------------------------

TEST(CheckAuto, PicksSpecialCasesAndAgreesWithExact) {
  Xoshiro256ss rng(81);
  for (int trial = 0; trial < 30; ++trial) {
    SingleAddressParams params;
    params.num_histories = 2 + rng.below(4);
    params.ops_per_history = 1 + rng.below(5);
    params.num_values = 2 + rng.below(6);
    params.rmw_fraction = rng.chance(0.5) ? 1.0 : 0.0;
    if (params.rmw_fraction == 1.0) params.write_fraction = 1.0;
    const auto trace = workload::generate_coherent(params, rng);
    const auto instance = make(trace.execution);
    const auto dispatched = check_auto(instance);
    const auto exact = check_exact(instance);
    EXPECT_EQ(dispatched.verdict, exact.verdict);
    if (dispatched.verdict == Verdict::kCoherent)
      expect_valid_witness(instance, dispatched);
  }
}

TEST(VerifyCoherence, MultiAddressCoherentTrace) {
  Xoshiro256ss rng(91);
  workload::MultiAddressParams params;
  const auto trace = workload::generate_sc(params, rng);
  const auto report = verify_coherence(trace.execution);
  EXPECT_TRUE(report.coherent());
  EXPECT_EQ(report.addresses.size(), trace.execution.addresses().size());
}

TEST(VerifyCoherence, DetectsPlantedViolation) {
  // Coherent on address 0, planted cross-reader conflict on address 1.
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(1, 1))
                        .process(W(1, 2))
                        .process(R(1, 1), R(1, 2))
                        .process(R(1, 2), R(1, 1))
                        .build();
  const auto report = verify_coherence(exec);
  EXPECT_EQ(report.verdict, Verdict::kIncoherent);
  ASSERT_NE(report.first_violation(), nullptr);
  EXPECT_EQ(report.first_violation()->addr, 1u);
}

TEST(VerifyCoherence, FirstViolationIsRecordedAtAggregation) {
  // Violations planted on addresses 2 and 5: first_violation() must be
  // the lowest offending address, located via the recorded index (no
  // rescan), and the index must agree with the report entry.
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(2, 1), W(5, 1))
                        .process(R(2, 9), R(5, 9))
                        .build();
  const auto report = verify_coherence(exec);
  EXPECT_EQ(report.verdict, Verdict::kIncoherent);
  ASSERT_NE(report.first_violation_index, CoherenceReport::kNoViolation);
  ASSERT_LT(report.first_violation_index, report.addresses.size());
  ASSERT_NE(report.first_violation(), nullptr);
  EXPECT_EQ(report.first_violation()->addr, 2u);
  EXPECT_EQ(&report.addresses[report.first_violation_index],
            report.first_violation());

  // Coherent reports carry the sentinel and a null first_violation.
  const auto clean =
      verify_coherence(ExecutionBuilder().process(W(0, 1), R(0, 1)).build());
  EXPECT_EQ(clean.first_violation_index, CoherenceReport::kNoViolation);
  EXPECT_EQ(clean.first_violation(), nullptr);

  // The parallel sweep records the same index deterministically, even
  // though its early-cancel may skip later addresses.
  const auto parallel = verify_coherence_parallel(exec, 4);
  EXPECT_EQ(parallel.first_violation_index, report.first_violation_index);
  ASSERT_NE(parallel.first_violation(), nullptr);
  EXPECT_EQ(parallel.first_violation()->addr, 2u);
}

TEST(VerifyCoherenceWithWriteOrder, UsesRecordedOrders) {
  Xoshiro256ss rng(101);
  workload::MultiAddressParams params;
  params.num_processes = 4;
  params.ops_per_process = 30;
  const auto trace = workload::generate_sc(params, rng);
  const auto report =
      verify_coherence_with_write_order(trace.execution, trace.write_orders);
  EXPECT_TRUE(report.coherent());
  // Witnesses come back in original coordinates and validate per address.
  for (const auto& [addr, result] : report.addresses) {
    const auto check = check_coherent_schedule(trace.execution, addr, result.witness);
    EXPECT_TRUE(check.ok) << check.violation;
  }
}

TEST(VerifyCoherenceWithWriteOrder, BadOrderRejects) {
  const auto exec = ExecutionBuilder().process(W(0, 1), W(0, 2)).build();
  WriteOrderMap orders;
  orders[0] = {{0, 1}, {0, 0}};
  const auto report = verify_coherence_with_write_order(exec, orders);
  EXPECT_EQ(report.verdict, Verdict::kIncoherent);
}

// --- Parallel per-address verification -----------------------------------

TEST(ParallelFor, CoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for_each(100, 4, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(parallel_for_each(16, 4,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ParallelFor, HandlesEmptyAndSingle) {
  int calls = 0;
  parallel_for_each(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_each(1, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(VerifyCoherenceParallel, MatchesSerialVerdicts) {
  Xoshiro256ss rng(113);
  for (int trial = 0; trial < 6; ++trial) {
    workload::MultiAddressParams params;
    params.num_processes = 4;
    params.ops_per_process = 20;
    params.num_addresses = 6;
    const auto trace = workload::generate_sc(params, rng);

    const auto serial = verify_coherence(trace.execution);
    for (const std::size_t workers : {1, 2, 4}) {
      const auto parallel = verify_coherence_parallel(trace.execution, workers);
      EXPECT_EQ(parallel.verdict, serial.verdict);
      ASSERT_EQ(parallel.addresses.size(), serial.addresses.size());
      for (std::size_t i = 0; i < parallel.addresses.size(); ++i) {
        EXPECT_EQ(parallel.addresses[i].addr, serial.addresses[i].addr);
        EXPECT_EQ(parallel.addresses[i].result.verdict,
                  serial.addresses[i].result.verdict);
        // Witnesses certify regardless of which thread produced them.
        if (parallel.addresses[i].result.verdict == Verdict::kCoherent) {
          const auto valid = check_coherent_schedule(
              trace.execution, parallel.addresses[i].addr,
              parallel.addresses[i].result.witness);
          EXPECT_TRUE(valid.ok) << valid.violation;
        }
      }
    }
  }
}

TEST(VerifyCoherenceParallel, EarlyCancelKeepsVerdictDeterministic) {
  // Several incoherent addresses: whichever one a worker proves first
  // cancels the fleet, but the aggregate verdict must always equal the
  // sequential path's, on every thread schedule.
  ExecutionBuilder builder;
  builder.process(W(0, 1), W(1, 1), W(2, 1), W(3, 1));
  for (Addr a = 0; a < 4; ++a) {
    builder.process(W(a, 2));
    builder.process(R(a, 1), R(a, 2));
    builder.process(R(a, 2), R(a, 1));  // cross-reader conflict on every addr
  }
  const auto exec = builder.build();
  const auto serial = verify_coherence(exec);
  ASSERT_EQ(serial.verdict, Verdict::kIncoherent);
  for (int round = 0; round < 10; ++round) {
    const auto parallel = verify_coherence_parallel(exec, 4);
    EXPECT_EQ(parallel.verdict, Verdict::kIncoherent);
    EXPECT_EQ(parallel.addresses.size(), serial.addresses.size());
    ASSERT_NE(parallel.first_violation(), nullptr);
    // Skipped addresses (if any) are marked, never silently coherent.
    for (const auto& report : parallel.addresses)
      EXPECT_NE(report.result.verdict, Verdict::kCoherent);
  }
}

TEST(VerifyCoherenceParallel, SharedIndexOverloadMatches) {
  Xoshiro256ss rng(127);
  workload::MultiAddressParams params;
  params.num_processes = 4;
  params.ops_per_process = 24;
  params.num_addresses = 5;
  const auto trace = workload::generate_sc(params, rng);
  const AddressIndex index(trace.execution);
  const auto direct = verify_coherence(trace.execution);
  const auto via_index = verify_coherence(index);
  const auto via_index_parallel = verify_coherence_parallel(index, 3);
  ASSERT_EQ(via_index.addresses.size(), direct.addresses.size());
  ASSERT_EQ(via_index_parallel.addresses.size(), direct.addresses.size());
  EXPECT_EQ(via_index.verdict, direct.verdict);
  EXPECT_EQ(via_index_parallel.verdict, direct.verdict);
  for (std::size_t i = 0; i < direct.addresses.size(); ++i) {
    EXPECT_EQ(via_index.addresses[i].result.verdict,
              direct.addresses[i].result.verdict);
    EXPECT_EQ(via_index_parallel.addresses[i].result.verdict,
              direct.addresses[i].result.verdict);
  }
}

// ---- Differential: arena/packed-key search vs frozen legacy ----------

// The hot-path rework (arena-backed frontier, packed keys, SoA stack)
// must be invisible at the semantic level: same verdicts, same witness,
// and the same SearchStats counters — the searches explore identical
// state sequences, so any divergence is a dedup or ordering bug, not an
// acceptable "different but valid" answer.
void expect_stats_match_legacy(const SearchStats& now,
                               const SearchStats& legacy) {
  EXPECT_EQ(now.states_visited, legacy.states_visited);
  EXPECT_EQ(now.transitions, legacy.transitions);
  EXPECT_EQ(now.max_frontier, legacy.max_frontier);
  EXPECT_EQ(now.prunes, legacy.prunes);
}

TEST(ExactDifferential, MatchesLegacyOnRandomizedAndFaultedTraces) {
  Xoshiro256ss rng(97);
  for (int trial = 0; trial < 40; ++trial) {
    SingleAddressParams params;
    params.num_histories = 2 + rng.below(4);
    params.ops_per_history = 2 + rng.below(7);
    params.num_values = 2 + rng.below(3);
    const auto trace = workload::generate_coherent(params, rng);
    std::vector<Execution> cases{trace.execution};
    for (const Fault f : {Fault::kStaleRead, Fault::kLostWrite,
                          Fault::kFabricatedRead, Fault::kReorderedOps}) {
      if (auto faulted = workload::inject_fault(trace, f, rng))
        cases.push_back(std::move(*faulted));
    }
    for (const auto& exec : cases) {
      const auto instance = make(exec);
      const auto now = check_exact(instance);
      const auto legacy = check_exact_legacy(instance);
      ASSERT_EQ(now.verdict, legacy.verdict) << "trial " << trial;
      EXPECT_EQ(now.witness, legacy.witness);
      expect_stats_match_legacy(now.stats, legacy.stats);
      if (now.verdict == Verdict::kCoherent)
        expect_valid_witness(instance, now);
    }
  }
}

TEST(ExactDifferential, MatchesLegacyUnderAblatedOptions) {
  // The equivalence must hold in every search mode, not just the default:
  // disabling memoization or eager reads changes the explored sequence,
  // and legacy and reworked searches must change in lockstep.
  Xoshiro256ss rng(31);
  SingleAddressParams params;
  params.num_histories = 3;
  params.ops_per_history = 5;
  params.num_values = 3;
  for (int trial = 0; trial < 10; ++trial) {
    const auto trace = workload::generate_coherent(params, rng);
    std::vector<Execution> cases{trace.execution};
    if (auto faulted = workload::inject_fault(trace, Fault::kStaleRead, rng))
      cases.push_back(std::move(*faulted));
    for (const auto& exec : cases) {
      for (const bool eager : {true, false}) {
        for (const bool memo : {true, false}) {
          ExactOptions options;
          options.eager_reads = eager;
          options.memoize = memo;
          const auto now = check_exact(make(exec), options);
          const auto legacy = check_exact_legacy(make(exec), options);
          ASSERT_EQ(now.verdict, legacy.verdict)
              << "eager=" << eager << " memo=" << memo;
          EXPECT_EQ(now.witness, legacy.witness);
          expect_stats_match_legacy(now.stats, legacy.stats);
        }
      }
    }
  }
}

TEST(ExactDifferential, ArenaStatsArePopulated) {
  // The reworked search must account its storage: any instance that
  // reaches the frontier search reserves arena space and serves at least
  // one allocation from it; the frozen legacy reports zeros by contract.
  const auto instance = make(figure_4_2());
  const auto now = check_exact(instance);
  EXPECT_GT(now.stats.arena_reserved, 0u);
  EXPECT_GT(now.stats.arena_high_water, 0u);
  EXPECT_GT(now.stats.arena_allocations, 0u);
  EXPECT_LE(now.stats.arena_high_water, now.stats.arena_reserved);
  const auto legacy = check_exact_legacy(instance);
  EXPECT_EQ(legacy.stats.arena_reserved, 0u);
}

TEST(Aggregation, PeakProvenanceTracksOwningAddress) {
  // Two addresses with very different search sizes: the peaks in the
  // merged effort must be attributed to the address that produced them.
  Xoshiro256ss rng(7);
  SingleAddressParams params;
  params.num_histories = 4;
  params.ops_per_history = 6;
  params.num_values = 3;
  params.addr = 1;  // address 0 stays trivial
  const auto trace = workload::generate_coherent(params, rng);
  Execution merged = trace.execution;
  merged.add_history(ProcessHistory{std::vector<Operation>{W(0, 1)}});

  const auto report = verify_coherence(merged);
  ASSERT_EQ(report.addresses.size(), 2u);
  // Address 1 (index 1 in sorted order) did the real search work.
  if (report.effort.states_visited > 0) {
    ASSERT_NE(report.peak_visited_index, CoherenceReport::kNoViolation);
    EXPECT_EQ(report.addresses[report.peak_visited_index].addr, 1u);
  }
  if (report.effort.arena_high_water > 0) {
    ASSERT_NE(report.peak_arena_index, CoherenceReport::kNoViolation);
    EXPECT_EQ(report.addresses[report.peak_arena_index].addr, 1u);
  }
  // Sequential and parallel dispatch agree on effort totals and
  // provenance (per-shard stats are merged, never dropped).
  const auto parallel = verify_coherence_parallel(merged, 2);
  EXPECT_EQ(parallel.effort.states_visited, report.effort.states_visited);
  EXPECT_EQ(parallel.effort.max_frontier, report.effort.max_frontier);
  EXPECT_EQ(parallel.peak_frontier_index, report.peak_frontier_index);
  EXPECT_EQ(parallel.peak_visited_index, report.peak_visited_index);
  EXPECT_EQ(parallel.peak_arena_index, report.peak_arena_index);
}

TEST(VerifyCoherenceParallel, FlagsViolationsLikeSerial) {
  const auto exec = ExecutionBuilder()
                        .process(W(0, 1), W(1, 1))
                        .process(W(1, 2))
                        .process(R(1, 1), R(1, 2))
                        .process(R(1, 2), R(1, 1))
                        .build();
  const auto report = verify_coherence_parallel(exec, 3);
  EXPECT_EQ(report.verdict, Verdict::kIncoherent);
  ASSERT_NE(report.first_violation(), nullptr);
  EXPECT_EQ(report.first_violation()->addr, 1u);
}

}  // namespace
}  // namespace vermem::vmc
