// A guided tour of the paper's reductions, printing each constructed
// instance for the running example Q = (u0 | ~u1) & (u1 | u2):
//
//   Figure 4.1  SAT  -> VMC          (general form; Figure 4.2 is Q = u)
//   Figure 5.1  3SAT -> VMC          (<=3 ops/process, <=2 writes/value)
//   Figure 5.2  3SAT -> VMC, RMW     (<=2 RMW/process, <=3 writes/value)
//   Figure 6.2  SAT  -> VSCC         (coherent by construction)
//   Figure 6.1  acquire/release wrap (for models that relax coherence)
//
// Build & run:  ./build/examples/reduction_tour

#include <cstdio>

#include "reductions/restricted.hpp"
#include "reductions/sat_to_vmc.hpp"
#include "reductions/sat_to_vscc.hpp"
#include "reductions/sync_wrap.hpp"
#include "sat/gen.hpp"
#include "trace/text_io.hpp"
#include "vmc/checker.hpp"
#include "vmc/exact.hpp"
#include "vsc/exact.hpp"

namespace {

void show(const char* title, const vermem::Execution& exec) {
  std::printf("---- %s: %zu histories, %zu operations ----\n%s\n", title,
              exec.num_processes(), exec.num_operations(),
              vermem::serialize_execution(exec).c_str());
}

}  // namespace

int main() {
  using namespace vermem;

  // Figure 4.2's exact example first: Q = u.
  sat::Cnf q_u;
  q_u.reserve_vars(1);
  q_u.add_unit(sat::pos(0));
  show("Figure 4.2 (Q = u)", reductions::sat_to_vmc(q_u).instance.execution);

  // The running example.
  sat::Cnf cnf;
  cnf.reserve_vars(3);
  cnf.add_binary(sat::pos(0), sat::neg(1));
  cnf.add_binary(sat::pos(1), sat::pos(2));

  const auto fig41 = reductions::sat_to_vmc(cnf);
  show("Figure 4.1 (SAT -> VMC)", fig41.instance.execution);
  std::printf("verdict: %s (formula is satisfiable)\n\n",
              to_string(vmc::check_exact(fig41.instance).verdict));

  // The restricted forms need exactly-3 clauses; pad with a repeated var.
  sat::Cnf cnf3;
  cnf3.reserve_vars(3);
  cnf3.add_ternary(sat::pos(0), sat::neg(1), sat::neg(1));
  cnf3.add_ternary(sat::pos(1), sat::pos(2), sat::pos(2));

  const auto fig51 = reductions::three_sat_to_vmc_3ops(cnf3);
  std::printf("---- Figure 5.1 (3 ops/process, <=2 writes/value) ----\n");
  std::printf("histories: %zu, max ops/process: %zu, max writes/value: %zu\n",
              fig51.instance.num_histories(),
              fig51.instance.max_ops_per_process(),
              fig51.instance.max_writes_per_value());

  const auto fig52 = reductions::three_sat_to_vmc_rmw(cnf3);
  std::printf("\n---- Figure 5.2 (2 RMW/process, <=3 writes/value) ----\n");
  std::printf("histories: %zu, all RMW: %s, max writes/value: %zu\n",
              fig52.instance.num_histories(),
              fig52.instance.all_rmw() ? "yes" : "no",
              fig52.instance.max_writes_per_value());
  show("Figure 5.2 instance", fig52.instance.execution);

  const auto fig62 = reductions::sat_to_vscc(cnf);
  std::printf("---- Figure 6.2 (SAT -> VSCC) ----\n");
  std::printf("processes: %zu, addresses: %zu\n",
              fig62.execution.num_processes(), fig62.execution.addresses().size());
  std::printf("coherent by construction: %s\n",
              to_string(vmc::verify_coherence(fig62.execution).verdict));
  std::printf("sequentially consistent: %s\n\n",
              to_string(vsc::check_sc_exact(fig62.execution).verdict));

  const auto wrapped =
      reductions::wrap_with_synchronization(fig41.instance.execution, 999);
  std::printf("---- Figure 6.1 (acquire/release wrapping, lock=999) ----\n");
  std::printf("%zu operations after wrapping (3x data ops)\n",
              wrapped.num_operations());
  std::printf("wrapped instance under SC: %s (unchanged, as expected)\n",
              to_string(vsc::check_sc_exact(wrapped).verdict));
  return 0;
}
