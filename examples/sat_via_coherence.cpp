// Theorem 4.2 in action, both directions:
//
//   SAT -> VMC:  a formula is turned into a shared-memory trace whose
//                coherence encodes satisfiability (Figure 4.1); the
//                coherence checker doubles as a SAT solver, and the
//                witness schedule decodes back into a model.
//   VMC -> SAT:  a recorded trace is compiled to CNF and the CDCL solver
//                decides coherence (the practical direction).
//
// Build & run:  ./build/examples/sat_via_coherence

#include <cstdio>

#include "encode/vmc_to_cnf.hpp"
#include "reductions/sat_to_vmc.hpp"
#include "sat/gen.hpp"
#include "sat/solver.hpp"
#include "vmc/exact.hpp"
#include "workload/random.hpp"

int main() {
  using namespace vermem;

  // --- Direction 1: solve SAT with the coherence checker ----------------
  std::printf("== SAT via coherence (Figure 4.1) ==\n");
  {
    // (u0 | u1) & (~u0 | u1) & (~u1 | u2): satisfiable, forces u1, u2.
    sat::Cnf cnf;
    cnf.reserve_vars(3);
    cnf.add_binary(sat::pos(0), sat::pos(1));
    cnf.add_binary(sat::neg(0), sat::pos(1));
    cnf.add_binary(sat::neg(1), sat::pos(2));

    const auto reduction = reductions::sat_to_vmc(cnf);
    std::printf("formula: %u vars, %zu clauses -> VMC instance: %zu histories, "
                "%zu operations\n",
                cnf.num_vars, cnf.num_clauses(),
                reduction.instance.num_histories(),
                reduction.instance.num_operations());

    const auto result = vmc::check_exact(reduction.instance);
    std::printf("coherence checker says: %s\n", to_string(result.verdict));
    if (result.coherent()) {
      const auto model = reduction.assignment_from_schedule(result.witness);
      std::printf("decoded assignment:");
      for (std::size_t v = 0; v < model.size(); ++v)
        std::printf(" u%zu=%d", v, model[v] ? 1 : 0);
      std::printf("  (satisfies formula: %s)\n",
                  cnf.satisfied_by(model) ? "yes" : "no");
    }

    // An unsatisfiable formula gives an incoherent trace.
    sat::Cnf unsat = cnf;
    unsat.add_unit(sat::neg(1));  // contradicts the forced u1
    const auto bad = reductions::sat_to_vmc(unsat);
    std::printf("unsatisfiable variant -> %s\n",
                to_string(vmc::check_exact(bad.instance).verdict));
  }

  // --- Direction 2: check coherence with the SAT solver -----------------
  std::printf("\n== coherence via SAT (the practical checker) ==\n");
  {
    Xoshiro256ss rng(7);
    workload::SingleAddressParams params;
    params.num_histories = 6;
    params.ops_per_history = 20;
    params.num_values = 4;
    const auto trace = workload::generate_coherent(params, rng);
    const vmc::VmcInstance instance{trace.execution, params.addr};

    const auto enc = encode::encode_vmc(instance);
    std::printf("trace: %zu histories x %zu ops -> CNF: %u vars, %zu clauses\n",
                instance.num_histories(), params.ops_per_history, enc.cnf.num_vars,
                enc.cnf.num_clauses());

    const auto verdict = encode::check_via_sat(instance);
    std::printf("clean trace: %s\n", to_string(verdict.verdict));

    if (auto faulted =
            workload::inject_fault(trace, workload::Fault::kStaleRead, rng)) {
      const vmc::VmcInstance broken{*faulted, params.addr};
      const auto flagged = encode::check_via_sat(broken);
      std::printf("after injecting a stale read: %s (%s)\n",
                  to_string(flagged.verdict), flagged.reason().c_str());
    }
  }
  return 0;
}
