// minisat_lite: the in-tree CDCL solver as a standalone DIMACS tool,
// with optional self-checked UNSAT proofs.
//
// Usage:
//   minisat_lite [--no-vsids] [--no-restarts] [--proof] [FILE.cnf]
//
// Reads DIMACS from FILE (or stdin), prints the standard "s SATISFIABLE /
// s UNSATISFIABLE" line plus a "v" model line when satisfiable. With
// --proof, UNSAT results are re-verified by the independent RUP checker
// before being reported. Exit codes follow the SAT-competition
// convention: 10 SAT, 20 UNSAT, 0 unknown/error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sat/cnf.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "support/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace vermem;

  sat::SolverOptions options;
  bool want_proof = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-vsids")
      options.use_vsids = false;
    else if (arg == "--no-restarts")
      options.use_restarts = false;
    else if (arg == "--proof")
      want_proof = options.log_proof = true;
    else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: minisat_lite [--no-vsids] [--no-restarts] [--proof] "
                   "[FILE.cnf]\n");
      return 0;
    } else {
      path = arg;
    }
  }

  std::string text;
  if (path.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 0;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  const auto parsed = sat::parse_dimacs(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 0;
  }
  std::printf("c vermem minisat_lite: %u vars, %zu clauses\n",
              parsed.cnf.num_vars, parsed.cnf.num_clauses());

  Stopwatch sw;
  const auto result = sat::solve(parsed.cnf, options);
  std::printf("c solved in %.3f s (%llu conflicts, %llu decisions)\n",
              sw.seconds(),
              static_cast<unsigned long long>(result.stats.conflicts),
              static_cast<unsigned long long>(result.stats.decisions));

  switch (result.status) {
    case sat::Status::kSat: {
      std::printf("s SATISFIABLE\nv");
      for (sat::Var v = 0; v < parsed.cnf.num_vars; ++v)
        std::printf(" %d", result.model[v] ? static_cast<int>(v) + 1
                                           : -(static_cast<int>(v) + 1));
      std::printf(" 0\n");
      return 10;
    }
    case sat::Status::kUnsat:
      if (want_proof) {
        const bool certified = sat::check_rup_proof(parsed.cnf, result.proof);
        std::printf("c RUP proof: %zu steps, %s\n", result.proof.size(),
                    certified ? "VERIFIED" : "REJECTED (solver bug!)");
        if (!certified) return 0;
      }
      std::printf("s UNSATISFIABLE\n");
      return 20;
    case sat::Status::kUnknown:
      std::printf("s UNKNOWN\n");
      return 0;
  }
  return 0;
}
