// Directory machine explorer: runs the message-passing workload on the
// 3-hop MSI directory machine and demonstrates, live, the paper's
// Section 6 distinction — a protocol relaxation ("eager writes": commit
// before invalidation acks) that keeps every address coherent while
// breaking sequential consistency.
//
// Build & run:  ./build/examples/directory_explorer

#include <cstdio>
#include <iostream>

#include "sim/directory.hpp"
#include "support/table.hpp"
#include "trace/stats.hpp"
#include "vmc/checker.hpp"
#include "vsc/exact.hpp"

int main() {
  using namespace vermem;

  // Message passing: node 0 writes payload then flag; node 1 polls both.
  auto mp_programs = [](std::size_t rounds) {
    std::vector<sim::Program> programs(2);
    for (std::size_t round = 1; round <= rounds; ++round) {
      programs[0].push_back(
          {sim::Request::Kind::kStore, 0, static_cast<Value>(round)});
      programs[0].push_back(
          {sim::Request::Kind::kStore, 1, static_cast<Value>(round)});
      programs[1].push_back({sim::Request::Kind::kLoad, 1, 0});
      programs[1].push_back({sim::Request::Kind::kLoad, 0, 0});
    }
    return programs;
  };

  TextTable table({"seed", "mode", "coherent?", "SC?", "msgs", "3-hop fwds"});
  int eager_sc_violations = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const bool shown = seed <= 4 || eager_sc_violations == 0;
    if (!shown && seed > 4) break;  // stop once a violation is on the table
    for (const bool eager : {false, true}) {
      sim::DirectoryConfig config;
      config.num_nodes = 2;
      config.cache_lines = 4;
      config.seed = seed;
      config.min_latency = 1;
      config.max_latency = 24;
      config.eager_writes = eager;
      const auto result = sim::run_programs_directory(mp_programs(10), config);

      const auto coherence = vmc::verify_coherence_with_write_order(
          result.execution, result.write_orders);
      vsc::ScOptions sc_options;
      sc_options.max_transitions = 5'000'000;
      const auto sc = vsc::check_sc_exact(result.execution, sc_options);
      if (eager && sc.verdict == vmc::Verdict::kIncoherent)
        ++eager_sc_violations;

      table.add_row({std::to_string(seed),
                     eager ? "eager writes" : "ack-collecting",
                     to_string(coherence.verdict), to_string(sc.verdict),
                     std::to_string(result.stats.messages),
                     std::to_string(result.stats.forwards)});
    }
  }
  table.print(std::cout);

  std::printf(
      "\nThe ack-collecting protocol is SC; skipping the ack wait kept every\n"
      "address coherent but produced %d non-SC runs — verifying coherence\n"
      "is not the same problem as verifying consistency (paper, Section 6).\n",
      eager_sc_violations);

  // Bonus: trace shape of a bigger run.
  Xoshiro256ss rng(99);
  sim::RandomProgramParams params;
  params.num_cores = 4;
  params.requests_per_core = 500;
  params.num_addresses = 12;
  sim::DirectoryConfig config;
  config.num_nodes = 4;
  config.seed = 99;
  const auto big = sim::run_programs_directory(
      sim::random_programs(params, rng), config);
  std::printf("\nbigger run: %s\n", summarize(compute_stats(big.execution)).c_str());
  std::printf("directory stats: %llu msgs, %llu forwards, peak home queue %llu, "
              "%llu ticks\n",
              static_cast<unsigned long long>(big.stats.messages),
              static_cast<unsigned long long>(big.stats.forwards),
              static_cast<unsigned long long>(big.stats.max_home_queue),
              static_cast<unsigned long long>(big.stats.ticks));
  return eager_sc_violations > 0 ? 0 : 1;
}
