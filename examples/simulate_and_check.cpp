// Dynamic verification of a simulated multiprocessor (the paper's
// motivating scenario): run workloads on the MESI machine, record the
// trace and the bus write-order, and verify coherence with the
// polynomial Section 5.2 checker. Then break the protocol in four
// different ways and measure how often each bug is caught.
//
// Build & run:  ./build/examples/simulate_and_check

#include <cstdio>

#include "sim/machine.hpp"
#include "sim/program.hpp"
#include "support/table.hpp"
#include "vmc/checker.hpp"

#include <iostream>

int main() {
  using namespace vermem;

  // --- Part 1: a healthy machine always verifies -----------------------
  std::printf("== healthy machine ==\n");
  {
    Xoshiro256ss rng(42);
    sim::RandomProgramParams params;
    params.num_cores = 4;
    params.requests_per_core = 200;
    params.num_addresses = 12;
    const auto programs = sim::random_programs(params, rng);

    sim::SimConfig config;
    config.num_cores = 4;
    config.cache_lines = 4;
    config.seed = 42;
    const sim::SimResult result = sim::run_programs(programs, config);

    const auto report = vmc::verify_coherence_with_write_order(
        result.execution, result.write_orders);
    std::printf(
        "%zu ops, %llu bus reads, %llu invalidations, %llu writebacks -> %s\n",
        result.execution.num_operations(),
        static_cast<unsigned long long>(result.stats.bus_reads),
        static_cast<unsigned long long>(result.stats.invalidations),
        static_cast<unsigned long long>(result.stats.writebacks),
        to_string(report.verdict));
  }

  // --- Part 2: fault-injection detection rates -------------------------
  std::printf("\n== fault injection (20 seeds each) ==\n");
  struct Scenario {
    const char* name;
    sim::FaultPlan plan;
  };
  const Scenario scenarios[] = {
      {"drop-invalidation", {.drop_invalidation = 0.2}},
      {"stale-fill", {.stale_fill = 0.3}},
      {"lost-writeback", {.lost_writeback = 0.3}},
      {"corrupt-value", {.corrupt_value = 0.05}},
  };

  TextTable table({"fault", "runs-with-fault", "flagged", "detection"});
  for (const Scenario& scenario : scenarios) {
    int with_fault = 0, flagged = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      Xoshiro256ss rng(seed);
      sim::RandomProgramParams params;
      params.num_cores = 4;
      params.requests_per_core = 60;
      params.num_addresses = 6;
      const auto programs = sim::random_programs(params, rng);
      sim::SimConfig config;
      config.num_cores = 4;
      config.cache_lines = 4;
      config.seed = seed;
      config.faults = scenario.plan;
      const sim::SimResult result = sim::run_programs(programs, config);
      if (result.stats.faults_injected == 0) continue;
      ++with_fault;
      const auto report = vmc::verify_coherence_with_write_order(
          result.execution, result.write_orders);
      flagged += report.verdict == vmc::Verdict::kIncoherent;
    }
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.0f%%",
                  with_fault ? 100.0 * flagged / with_fault : 0.0);
    table.add_row({scenario.name, std::to_string(with_fault),
                   std::to_string(flagged), rate});
  }
  table.print(std::cout);

  std::printf(
      "\nnote: a flagged run proves the trace has NO coherent schedule; an\n"
      "unflagged faulty run means the perturbed values happened to coincide\n"
      "with some legal execution (undetectable from the trace alone).\n");
  return 0;
}
