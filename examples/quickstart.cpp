// Quickstart: verify memory coherence of a recorded execution.
//
// This walks the core workflow in ~60 lines:
//   1. describe an execution (or parse one from the textual trace format),
//   2. run the coherence verifier,
//   3. inspect the witness schedule or the violation report.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "trace/schedule.hpp"
#include "trace/text_io.hpp"
#include "vmc/checker.hpp"

int main() {
  using namespace vermem;

  // An execution is a set of per-process histories with observed values.
  // This one is fine: both readers saw the two writes in the same order.
  const char* good_trace =
      "# two writers, two readers, one location\n"
      "P: W(0,1)\n"
      "P: W(0,2)\n"
      "P: R(0,1) R(0,2)\n"
      "P: R(0,1) R(0,2)\n";

  // This one is the classic coherence violation: the readers disagree on
  // the order of the writes.
  const char* bad_trace =
      "P: W(0,1)\n"
      "P: W(0,2)\n"
      "P: R(0,1) R(0,2)\n"
      "P: R(0,2) R(0,1)\n";

  for (const char* text : {good_trace, bad_trace}) {
    const ParseResult parsed = parse_execution(text);
    if (!parsed.ok()) {
      std::printf("trace parse error at line %zu: %s\n", parsed.line,
                  parsed.error.c_str());
      return 1;
    }

    // verify_coherence projects each address and picks the cheapest
    // applicable decision procedure (Figure 5.3 cascade), falling back to
    // the exact exponential search only when it must.
    const vmc::CoherenceReport report = vmc::verify_coherence(parsed.execution);

    if (report.coherent()) {
      std::printf("coherent.\n");
      for (const auto& [addr, result] : report.addresses) {
        std::printf("  address %u witness: %s\n", addr,
                    to_string(parsed.execution, result.witness).c_str());
      }
    } else {
      const auto* violation = report.first_violation();
      std::printf("INCOHERENT at address %u: %s\n", violation->addr,
                  violation->result.reason().c_str());
    }
  }
  return 0;
}
