// trace_doctor: command-line verifier for recorded memory traces.
//
// Reads a trace in the vermem text format (see trace/text_io.hpp) and
// checks it against a consistency requirement. This is the tool a
// hardware or simulator team would actually point at their logs.
//
// Usage:
//   trace_doctor [--model=coherence|sc|tso|pso] [--sat] [--parallel]
//                [--write-order=WOFILE] [FILE]
//
// With no FILE, reads stdin. --sat routes single-address coherence
// through the CNF encoder + CDCL solver instead of the native cascade;
// --parallel fans the per-address checks out over all cores;
// --write-order supplies the memory system's recorded per-address write
// serialization (format: "wo <addr> <proc>:<index> ..."), switching
// coherence checking to the polynomial Section 5.2 path.
// Exit code: 0 verified, 1 violation found, 2 undecided/usage error.
//
// Try:  ./build/examples/trace_doctor --model=sc <<'EOF'
//       P: W(0,1) W(1,1)
//       P: R(1,1) R(0,0)
//       EOF

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "encode/vmc_to_cnf.hpp"
#include "models/checker.hpp"
#include "trace/stats.hpp"
#include "trace/text_io.hpp"
#include "vmc/checker.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_doctor [--model=coherence|sc|tso|pso] [--sat] "
               "[--parallel] [FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vermem;

  std::string model = "coherence";
  bool use_sat = false;
  bool use_parallel = false;
  std::string path;
  std::string write_order_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--model=", 0) == 0)
      model = arg.substr(8);
    else if (arg == "--sat")
      use_sat = true;
    else if (arg == "--parallel")
      use_parallel = true;
    else if (arg.rfind("--write-order=", 0) == 0)
      write_order_path = arg.substr(14);
    else if (arg.rfind("--", 0) == 0)
      return usage();
    else
      path = arg;
  }

  std::string text;
  if (path.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  const ParseResult parsed = parse_execution(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error at line %zu: %s\n", parsed.line,
                 parsed.error.c_str());
    return 2;
  }
  const Execution& exec = parsed.execution;
  std::printf("%s\n", summarize(compute_stats(exec)).c_str());

  vmc::Verdict verdict;
  std::string detail;
  if (!write_order_path.empty() && model == "coherence") {
    std::ifstream wofile(write_order_path);
    if (!wofile) {
      std::fprintf(stderr, "cannot open %s\n", write_order_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << wofile.rdbuf();
    const auto orders = parse_write_orders(buffer.str());
    if (!orders.ok()) {
      std::fprintf(stderr, "write-order parse error at line %zu: %s\n",
                   orders.line, orders.error.c_str());
      return 2;
    }
    const auto report = vmc::verify_coherence_with_write_order(
        exec, {orders.orders.begin(), orders.orders.end()});
    verdict = report.verdict;
    if (const auto* violation = report.first_violation())
      detail = "address " + std::to_string(violation->addr) + ": " +
               violation->result.reason();
  } else if (model == "coherence" && use_sat) {
    verdict = vmc::Verdict::kCoherent;
    for (const Addr addr : exec.addresses()) {
      const auto result = encode::check_via_sat(
          vmc::VmcInstance::from_execution(exec, addr));
      if (result.verdict != vmc::Verdict::kCoherent) {
        verdict = result.verdict;
        detail = "address " + std::to_string(addr) + ": " + result.reason();
        break;
      }
    }
  } else if (model == "coherence") {
    const auto report = use_parallel ? vmc::verify_coherence_parallel(exec)
                                     : vmc::verify_coherence(exec);
    verdict = report.verdict;
    if (const auto* violation = report.first_violation())
      detail = "address " + std::to_string(violation->addr) + ": " +
               violation->result.reason();
  } else {
    models::Model m;
    if (model == "sc")
      m = models::Model::kSc;
    else if (model == "tso")
      m = models::Model::kTso;
    else if (model == "pso")
      m = models::Model::kPso;
    else
      return usage();
    const auto result = models::check_model(exec, m);
    verdict = result.verdict;
    detail = result.reason();
  }

  switch (verdict) {
    case vmc::Verdict::kCoherent:
      std::printf("VERIFIED under %s%s\n", model.c_str(),
                  use_sat ? " (via SAT)" : "");
      return 0;
    case vmc::Verdict::kIncoherent:
      std::printf("VIOLATION under %s: %s\n", model.c_str(), detail.c_str());
      return 1;
    case vmc::Verdict::kUnknown:
      std::printf("UNDECIDED: %s\n", detail.c_str());
      return 2;
  }
  return 2;
}
