// Litmus explorer: classify the standard litmus shapes under SC, TSO,
// PSO and coherence-only (Section 6.2's model spread), and demonstrate
// the paper's restriction argument — on a single location, every model
// collapses to coherence.
//
// Build & run:  ./build/examples/litmus_explorer

#include <cstdio>
#include <iostream>

#include "models/checker.hpp"
#include "models/litmus.hpp"
#include "support/table.hpp"
#include "workload/random.hpp"

int main() {
  using namespace vermem;
  using models::Model;

  std::printf("== litmus admissibility matrix ==\n");
  TextTable table({"test", "SC", "TSO", "PSO", "Coherence", "description"});
  for (const auto& test : models::standard_litmus_suite()) {
    std::vector<std::string> row{test.name};
    for (const Model m : models::kAllModels) {
      const auto result = models::check_model(test.execution, m);
      row.push_back(result.coherent() ? "allow" : "forbid");
    }
    row.push_back(test.description);
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::printf(
      "\n== single-location restriction (Section 6.2) ==\n"
      "On one shared location every hardware model reduces to coherence;\n"
      "checking 30 random single-address traces (some perturbed):\n");
  Xoshiro256ss rng(5);
  int agreements = 0, total = 0;
  for (int trial = 0; trial < 15; ++trial) {
    workload::SingleAddressParams params;
    params.num_histories = 3;
    params.ops_per_history = 4;
    const auto trace = workload::generate_coherent(params, rng);
    std::vector<Execution> cases{trace.execution};
    if (auto faulted =
            workload::inject_fault(trace, workload::Fault::kStaleRead, rng))
      cases.push_back(std::move(*faulted));
    for (const auto& exec : cases) {
      ++total;
      const bool coherent =
          models::check_model(exec, Model::kCoherenceOnly).coherent();
      bool all_agree = true;
      for (const Model m : models::kAllModels)
        all_agree &= models::check_model(exec, m).coherent() == coherent;
      agreements += all_agree;
    }
  }
  std::printf("models agreed with the coherence verdict on %d/%d traces\n",
              agreements, total);
  return agreements == total ? 0 : 1;
}
